package server

import (
	"container/list"
	"sync"

	"phrasemine"
)

// CacheStats is a point-in-time summary of result-cache effectiveness,
// reported by /stats.
type CacheStats struct {
	Capacity      int   `json:"capacity"`
	Entries       int   `json:"entries"`
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Invalidations int64 `json:"invalidations"`
}

// resultCache is a bounded, mutex-guarded LRU of successful query results
// keyed on the normalized query string. Only successful responses are
// cached — errors are cheap to recompute and must not be pinned.
type resultCache struct {
	mu            sync.Mutex
	capacity      int
	entries       map[string]*list.Element
	order         *list.List // front = most recently used
	hits          int64
	misses        int64
	invalidations int64
	// gen counts invalidations; Put drops results computed before the
	// latest one (see Generation).
	gen int64
}

type cacheEntry struct {
	key     string
	results []phrasemine.Result
}

// newResultCache creates a cache holding up to capacity entries. A
// capacity <= 0 disables caching: Get always misses and Put is a no-op.
func newResultCache(capacity int) *resultCache {
	return &resultCache{
		capacity: capacity,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
	}
}

// Get returns the cached results for key, marking them most recently used.
func (c *resultCache) Get(key string) ([]phrasemine.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).results, true
}

// Generation returns the invalidation counter. Callers snapshot it before
// computing a result and hand it back to Put, which discards results from
// a superseded generation — without this, a query that started before a
// corpus mutation could insert its stale answer after the invalidation
// and poison the cache until the next mutation.
func (c *resultCache) Generation() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// Put stores results computed at generation gen under key, evicting the
// least recently used entry when the cache is full. Results from an older
// generation (the corpus changed while the query ran) are dropped.
func (c *resultCache) Put(key string, results []phrasemine.Result, gen int64) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.gen {
		return
	}
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).results = results
		c.order.MoveToFront(el)
		return
	}
	for len(c.entries) >= c.capacity {
		lru := c.order.Back()
		c.order.Remove(lru)
		delete(c.entries, lru.Value.(*cacheEntry).key)
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, results: results})
}

// Invalidate drops every entry. Called whenever the corpus changes
// (Add/Remove/Flush), since any cached answer may now be stale.
func (c *resultCache) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.entries) > 0 {
		c.entries = make(map[string]*list.Element)
		c.order.Init()
	}
	c.invalidations++
	c.gen++
}

// Stats snapshots the cache counters.
func (c *resultCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Capacity:      c.capacity,
		Entries:       len(c.entries),
		Hits:          c.hits,
		Misses:        c.misses,
		Invalidations: c.invalidations,
	}
}

// This file holds the debug and observability endpoints: net/http/pprof
// profiling handlers and expvar counters (including allocation counters),
// mountable on demand so production profiles can be captured without a
// rebuild — the serve command exposes them behind its -pprof flag.

package server

import (
	"expvar"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync/atomic"

	"phrasemine"
)

// Exported expvar counters. expvar also publishes the full runtime
// "memstats" map by default; the explicit mallocs/frees pair below gives
// scrapers a cheap allocation-rate signal without parsing it.
var (
	statQueries   = expvar.NewInt("phrasemine_queries_total")
	statBatches   = expvar.NewInt("phrasemine_batch_queries_total")
	statCacheHits = expvar.NewInt("phrasemine_cache_hits_total")
	statErrors    = expvar.NewInt("phrasemine_query_errors_total")
	statMutations = expvar.NewInt("phrasemine_mutations_total")
	// statPanics counts panics recovered on the serving path — handler
	// panics caught by ServeHTTP and query-goroutine panics converted to
	// errors. Any non-zero value is a bug worth a look; the stack is in
	// the error log.
	statPanics = expvar.NewInt("phrasemine_panics_total")
	// statReloads counts successful hot-reloads (generation swaps).
	statReloads = expvar.NewInt("phrasemine_reloads_total")
)

// gaugeMiner is the miner behind the index-memory gauges: the most
// recently constructed Server's (expvar names are process-global, so the
// gauges follow the newest server — in a deployment there is exactly one).
var gaugeMiner atomic.Pointer[phrasemine.Miner]

// registerIndexGauges points the index-memory gauges at m.
func registerIndexGauges(m *phrasemine.Miner) {
	gaugeMiner.Store(m)
}

func init() {
	expvar.Publish("phrasemine_mallocs_total", expvar.Func(mallocs))
	expvar.Publish("phrasemine_frees_total", expvar.Func(frees))
	expvar.Publish("phrasemine_heap_alloc_bytes", expvar.Func(heapAlloc))
	// Index-memory gauges, published as one variable so a /debug/vars
	// scrape computes IndexStats exactly once (it takes the miner read
	// lock and, on heap indexes, walks the postings map): physical bytes
	// per index section, the bytes/posting and bytes/entry ratios
	// compression is judged by, and the mmap-vs-heap split (mapped bytes
	// are demand-paged and shared, not process-private heap).
	expvar.Publish("phrasemine_index_stats", expvar.Func(func() any {
		m := gaugeMiner.Load()
		if m == nil {
			return phrasemine.IndexStats{}
		}
		return m.IndexStats()
	}))
}

func readMemStats() runtime.MemStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms
}

func mallocs() any   { ms := readMemStats(); return ms.Mallocs }
func frees() any     { ms := readMemStats(); return ms.Frees }
func heapAlloc() any { ms := readMemStats(); return ms.HeapAlloc }

// RegisterDebug mounts the pprof profiling handlers and the expvar variable
// dump on mux under the conventional /debug/ paths. It is deliberately not
// part of Server's own mux: callers opt in (the CLI's -pprof flag) because
// profiling endpoints should not be reachable on an unadorned public
// deployment.
func RegisterDebug(mux *http.ServeMux) {
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("POST /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

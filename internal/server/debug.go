// This file holds the debug and observability endpoints: net/http/pprof
// profiling handlers and expvar counters (including allocation counters),
// mountable on demand so production profiles can be captured without a
// rebuild — the serve command exposes them behind its -pprof flag.

package server

import (
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync/atomic"
	"time"

	"phrasemine"
)

// Exported expvar counters. expvar also publishes the full runtime
// "memstats" map by default; the explicit mallocs/frees pair below gives
// scrapers a cheap allocation-rate signal without parsing it.
var (
	statQueries   = expvar.NewInt("phrasemine_queries_total")
	statBatches   = expvar.NewInt("phrasemine_batch_queries_total")
	statCacheHits = expvar.NewInt("phrasemine_cache_hits_total")
	statErrors    = expvar.NewInt("phrasemine_query_errors_total")
	statMutations = expvar.NewInt("phrasemine_mutations_total")
	// statPanics counts panics recovered on the serving path — handler
	// panics caught by ServeHTTP and query-goroutine panics converted to
	// errors. Any non-zero value is a bug worth a look; the stack is in
	// the error log.
	statPanics = expvar.NewInt("phrasemine_panics_total")
	// statReloads counts successful hot-reloads (generation swaps).
	statReloads = expvar.NewInt("phrasemine_reloads_total")
	// statCanceled counts queries abandoned because the client went away
	// before the answer (the 499 path) — their goroutines stopped at the
	// next cancellation point instead of computing a discarded result.
	statCanceled = expvar.NewInt("phrasemine_canceled_total")
	// statShed counts requests rejected by the admission gate (503): the
	// concurrency limit was reached and the request found the wait queue
	// full or timed out in it.
	statShed = expvar.NewInt("phrasemine_shed_total")
	// statQuotaRejects counts requests rejected by a per-tenant token
	// bucket (429).
	statQuotaRejects = expvar.NewInt("phrasemine_quota_rejects_total")
	// statDegraded counts Partial queries answered from a subset of
	// segments because the deadline expired mid-gather.
	statDegraded = expvar.NewInt("phrasemine_degraded_total")
	// statApproximate counts answers carrying sketch-estimated tail
	// contributions (Mined.Approximate): the tail outgrew its exact-scan
	// threshold, or the query was windowed. Such answers are upper-bound
	// estimates and are never cached.
	statApproximate = expvar.NewInt("phrasemine_approximate_total")
)

// gaugeMiner is the miner behind the index-memory gauges: the most
// recently constructed Server's (expvar names are process-global, so the
// gauges follow the newest server — in a deployment there is exactly one).
var gaugeMiner atomic.Pointer[phrasemine.Miner]

// registerIndexGauges points the index-memory gauges at m.
func registerIndexGauges(m *phrasemine.Miner) {
	gaugeMiner.Store(m)
}

// gaugeAdmission is the admission gate behind the in-flight/queued
// gauges, following the newest server like gaugeMiner.
var gaugeAdmission atomic.Pointer[admission]

// registerAdmissionGauges points the load gauges at a.
func registerAdmissionGauges(a *admission) {
	gaugeAdmission.Store(a)
}

// latencyBucketsMs are the fixed upper bounds (milliseconds, cumulative)
// of the query latency histograms; observations above the last bound land
// in the +Inf bucket.
var latencyBucketsMs = [...]int64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// latencyHist is one lock-free latency histogram: per-bucket atomic
// counters plus a sum, snapshotted cumulatively for scrapers.
type latencyHist struct {
	buckets [len(latencyBucketsMs) + 1]atomic.Int64
	sumMs   atomic.Int64
}

func (h *latencyHist) observe(d time.Duration) {
	ms := d.Milliseconds()
	i := 0
	for i < len(latencyBucketsMs) && ms > latencyBucketsMs[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.sumMs.Add(ms)
}

func (h *latencyHist) snapshot() map[string]int64 {
	out := make(map[string]int64, len(latencyBucketsMs)+2)
	var cum int64
	for i, ub := range latencyBucketsMs {
		cum += h.buckets[i].Load()
		out[fmt.Sprintf("le_%d", ub)] = cum
	}
	cum += h.buckets[len(latencyBucketsMs)].Load()
	out["le_inf"] = cum
	out["sum_ms"] = h.sumMs.Load()
	return out
}

// queryLatencies holds one histogram per query algorithm (the request's
// selection, so "auto" is its own series) plus one for whole /mine/batch
// calls. Process-global like the counters above.
var queryLatencies = map[string]*latencyHist{
	"auto":  {},
	"nra":   {},
	"smj":   {},
	"gm":    {},
	"exact": {},
	"batch": {},
}

// observeLatency records one successful query's duration in its
// algorithm's histogram.
func observeLatency(algo string, d time.Duration) {
	if h := queryLatencies[algo]; h != nil {
		h.observe(d)
	}
}

func init() {
	expvar.Publish("phrasemine_mallocs_total", expvar.Func(mallocs))
	expvar.Publish("phrasemine_frees_total", expvar.Func(frees))
	expvar.Publish("phrasemine_heap_alloc_bytes", expvar.Func(heapAlloc))
	// Index-memory gauges, published as one variable so a /debug/vars
	// scrape computes IndexStats exactly once (it takes the miner read
	// lock and, on heap indexes, walks the postings map): physical bytes
	// per index section, the bytes/posting and bytes/entry ratios
	// compression is judged by, and the mmap-vs-heap split (mapped bytes
	// are demand-paged and shared, not process-private heap).
	expvar.Publish("phrasemine_index_stats", expvar.Func(func() any {
		m := gaugeMiner.Load()
		if m == nil {
			return phrasemine.IndexStats{}
		}
		return m.IndexStats()
	}))
	// Load gauges: queries currently executing and currently waiting in
	// the admission queue. Read through the pointer so they survive server
	// reconstruction (tests, embedding) like the index gauges.
	expvar.Publish("phrasemine_inflight_queries", expvar.Func(func() any {
		if a := gaugeAdmission.Load(); a != nil {
			return a.inflight.Load()
		}
		return int64(0)
	}))
	expvar.Publish("phrasemine_queued_queries", expvar.Func(func() any {
		if a := gaugeAdmission.Load(); a != nil {
			return a.queued.Load()
		}
		return int64(0)
	}))
	// Write-ahead-log gauges, read through the miner pointer like the
	// index gauges so they follow reloads. All four report zero when the
	// serving miner has no WAL (durability off): records/bytes are the
	// log's current size, replayed counts records recovered at open, and
	// append_errors counts mutations refused because the log could not
	// make them durable.
	expvar.Publish("phrasemine_wal_records_total", expvar.Func(walGauge(func(st phrasemine.WALStats) int64 {
		return st.AppendedTotal
	})))
	expvar.Publish("phrasemine_wal_bytes", expvar.Func(walGauge(func(st phrasemine.WALStats) int64 {
		return st.Bytes
	})))
	expvar.Publish("phrasemine_wal_replayed_records", expvar.Func(walGauge(func(st phrasemine.WALStats) int64 {
		return st.Replayed
	})))
	expvar.Publish("phrasemine_wal_append_errors", expvar.Func(walGauge(func(st phrasemine.WALStats) int64 {
		return st.AppendErrors
	})))
	// Live-tail gauges, published as one variable like the index stats: a
	// single TailStats snapshot per scrape (buffered docs, distinct
	// phrases, sketch footprint, the current pair-estimate error bound).
	// Reports an empty object when the serving miner has no tail.
	expvar.Publish("phrasemine_tail_stats", expvar.Func(func() any {
		m := gaugeMiner.Load()
		if m == nil {
			return phrasemine.TailStats{}
		}
		st, ok := m.TailStats()
		if !ok {
			return phrasemine.TailStats{}
		}
		return st
	}))
	// Latency histograms, one map per algorithm with cumulative bucket
	// counts (le_<ms>) and a millisecond sum.
	expvar.Publish("phrasemine_query_latency_ms", expvar.Func(func() any {
		out := make(map[string]map[string]int64, len(queryLatencies))
		for algo, h := range queryLatencies {
			out[algo] = h.snapshot()
		}
		return out
	}))
}

// walGauge adapts one WALStats field into an expvar.Func body: it reads
// the current gauge miner's log statistics and reports zero when no miner
// is registered or durability is off.
func walGauge(field func(phrasemine.WALStats) int64) func() any {
	return func() any {
		m := gaugeMiner.Load()
		if m == nil {
			return int64(0)
		}
		st, ok := m.WALStats()
		if !ok {
			return int64(0)
		}
		return field(st)
	}
}

func readMemStats() runtime.MemStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms
}

func mallocs() any   { ms := readMemStats(); return ms.Mallocs }
func frees() any     { ms := readMemStats(); return ms.Frees }
func heapAlloc() any { ms := readMemStats(); return ms.HeapAlloc }

// RegisterDebug mounts the pprof profiling handlers and the expvar variable
// dump on mux under the conventional /debug/ paths. It is deliberately not
// part of Server's own mux: callers opt in (the CLI's -pprof flag) because
// profiling endpoints should not be reachable on an unadorned public
// deployment.
func RegisterDebug(mux *http.ServeMux) {
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("POST /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

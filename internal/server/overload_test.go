package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// jsonBody marshals v for tests that need to build the request by hand
// (custom headers or contexts doJSON cannot attach).
func jsonBody(t *testing.T, v any) io.Reader {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(b)
}

// mineBody is the canonical storm payload — a keyword the test miner
// indexes, so admitted requests answer 200.
var mineBody = MineRequest{Keywords: []string{"trade"}, K: 5}

// TestOverloadStorm floods a MaxInflight=1 server with far more
// concurrent requests than it admits and asserts the overload contract:
// every request gets exactly one response, and it is 200, 503 with a
// Retry-After header, or 429 — never a hang, never a panic — and the
// server answers normally once the storm passes. Run under -race in CI.
func TestOverloadStorm(t *testing.T) {
	s := newTestServer(t, Options{
		MaxInflight:  1,
		MaxQueue:     1,
		QueueTimeout: time.Millisecond,
		CacheSize:    -1, // no cache: every request does real admission + work
	})
	panicsBefore := statPanics.Value()

	const n = 40
	codes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := doJSON(t, s, http.MethodPost, "/mine", mineBody)
			codes[i] = w.Code
			if w.Code == http.StatusServiceUnavailable && w.Header().Get("Retry-After") == "" {
				t.Errorf("request %d: 503 without Retry-After", i)
			}
		}(i)
	}
	wg.Wait()

	counts := map[int]int{}
	for i, c := range codes {
		switch c {
		case http.StatusOK, http.StatusServiceUnavailable, http.StatusTooManyRequests:
			counts[c]++
		default:
			t.Fatalf("request %d: unexpected status %d", i, c)
		}
	}
	if total := counts[200] + counts[503] + counts[429]; total != n {
		t.Fatalf("responses = %d, want %d (%v)", total, n, counts)
	}
	if counts[200] == 0 {
		t.Fatalf("no request succeeded during the storm: %v", counts)
	}
	if got := statPanics.Value(); got != panicsBefore {
		t.Fatalf("storm caused %d panics", got-panicsBefore)
	}
	if got := s.adm.inflight.Load(); got != 0 {
		t.Fatalf("inflight after storm = %d, want 0", got)
	}
	// Post-storm the server answers normally.
	if w := doJSON(t, s, http.MethodPost, "/mine", mineBody); w.Code != http.StatusOK {
		t.Fatalf("post-storm query = %d, want 200: %s", w.Code, w.Body.String())
	}
}

// TestShedDeterministic pins the 503 path without racing: the single
// slot is held, so every arrival sheds after the 1ms queue wait.
func TestShedDeterministic(t *testing.T) {
	s := newTestServer(t, Options{MaxInflight: 1, MaxQueue: 1, QueueTimeout: time.Millisecond, CacheSize: -1})
	release, outcome := s.adm.admit(context.Background(), "")
	if outcome != admitted {
		t.Fatalf("setup admit = %v", outcome)
	}
	shedBefore := statShed.Value()
	for i := 0; i < 3; i++ {
		w := doJSON(t, s, http.MethodPost, "/mine", mineBody)
		if w.Code != http.StatusServiceUnavailable {
			t.Fatalf("request %d with held slot = %d, want 503", i, w.Code)
		}
		if w.Header().Get("Retry-After") == "" {
			t.Fatalf("request %d: 503 without Retry-After", i)
		}
	}
	if got := statShed.Value(); got != shedBefore+3 {
		t.Fatalf("phrasemine_shed_total moved by %d, want 3", got-shedBefore)
	}
	release()
	if w := doJSON(t, s, http.MethodPost, "/mine", mineBody); w.Code != http.StatusOK {
		t.Fatalf("query after release = %d, want 200", w.Code)
	}
}

func TestTenantQuota429(t *testing.T) {
	s := newTestServer(t, Options{TenantQPS: 0.001, TenantBurst: 1, CacheSize: -1})
	rejectsBefore := statQuotaRejects.Value()
	send := func(tenant string) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		r := httptest.NewRequest(http.MethodPost, "/mine", jsonBody(t, mineBody))
		r.Header.Set("Content-Type", "application/json")
		if tenant != "" {
			r.Header.Set("X-Tenant", tenant)
		}
		s.ServeHTTP(w, r)
		return w
	}
	if w := send("acme"); w.Code != http.StatusOK {
		t.Fatalf("first acme query = %d, want 200: %s", w.Code, w.Body.String())
	}
	w := send("acme")
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("second acme query = %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// A different tenant has its own bucket.
	if w := send("globex"); w.Code != http.StatusOK {
		t.Fatalf("globex query = %d, want 200", w.Code)
	}
	if got := statQuotaRejects.Value(); got != rejectsBefore+1 {
		t.Fatalf("phrasemine_quota_rejects_total moved by %d, want 1", got-rejectsBefore)
	}
}

// TestLeakedWorkAfterTimeout is the leaked-work regression test: a query
// whose deadline expires must answer 504 and leave nothing running — the
// in-flight gauge drains to zero as soon as the handler returns, because
// cancellation stops the query on the handler goroutine itself.
func TestLeakedWorkAfterTimeout(t *testing.T) {
	s := newTestServer(t, Options{QueryTimeout: time.Nanosecond, CacheSize: -1})
	w := doJSON(t, s, http.MethodPost, "/mine", mineBody)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("expired query = %d, want 504: %s", w.Code, w.Body.String())
	}
	if got := s.adm.inflight.Load(); got != 0 {
		t.Fatalf("inflight after 504 = %d, want 0", got)
	}
}

// TestLeakedWorkAfterDisconnect covers the other reclaim path: the client
// goes away mid-request, the handler observes the canceled request
// context and returns 499 promptly, and the gauge drains.
func TestLeakedWorkAfterDisconnect(t *testing.T) {
	s := newTestServer(t, Options{CacheSize: -1})
	canceledBefore := statCanceled.Value()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // client already gone when the handler runs
	w := httptest.NewRecorder()
	r := httptest.NewRequest(http.MethodPost, "/mine", jsonBody(t, mineBody)).WithContext(ctx)
	r.Header.Set("Content-Type", "application/json")

	done := make(chan struct{})
	go func() {
		defer close(done)
		s.ServeHTTP(w, r)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("handler did not return after client disconnect")
	}
	if w.Code != statusClientClosedRequest {
		t.Fatalf("disconnected query = %d, want %d", w.Code, statusClientClosedRequest)
	}
	if got := statCanceled.Value(); got != canceledBefore+1 {
		t.Fatalf("phrasemine_canceled_total moved by %d, want 1", got-canceledBefore)
	}
	if got := s.adm.inflight.Load(); got != 0 {
		t.Fatalf("inflight after disconnect = %d, want 0", got)
	}
}

// TestDrainRejectsNewQueries covers BeginDrain: queued and new requests
// fail fast with 503 while the server shuts down.
func TestDrainRejectsNewQueries(t *testing.T) {
	s := newTestServer(t, Options{CacheSize: -1})
	s.BeginDrain()
	if w := doJSON(t, s, http.MethodPost, "/mine", mineBody); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("query under drain = %d, want 503", w.Code)
	}
}

package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"phrasemine/internal/corpus"
	"phrasemine/internal/textproc"
	"phrasemine/internal/topk"
)

func buildShardedForCancel(t *testing.T, nseg int) *ShardedIndex {
	t.Helper()
	c := smokeCorpus(11, 300)
	opt := BuildOptions{Extractor: textproc.ExtractorOptions{MinDocFreq: 3, MaxWords: 3, DropAllStopwordPhrases: true}}
	sx, err := BuildSharded(c, opt, nseg)
	if err != nil {
		t.Fatal(err)
	}
	return sx
}

func TestShardedCanceledBeforeStart(t *testing.T) {
	sx := buildShardedForCancel(t, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := corpus.NewQuery(corpus.OpOR, "trade", "bank")
	if _, err := sx.QuerySMJ(ctx, q, 5, 1.0); !errors.Is(err, context.Canceled) {
		t.Fatalf("QuerySMJ err = %v, want context.Canceled", err)
	}
	if _, err := sx.QueryNRA(ctx, q, 5, 1.0); !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryNRA err = %v, want context.Canceled", err)
	}
	if _, err := sx.QueryGM(ctx, q, 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryGM err = %v, want context.Canceled", err)
	}
	// The partial path has nothing to degrade to: zero completed segments
	// is a plain ctx error, not an empty answer.
	if _, done, err := sx.QuerySMJPartial(ctx, q, 5, 1.0); !errors.Is(err, context.Canceled) || done != 0 {
		t.Fatalf("QuerySMJPartial = (done=%d, err=%v), want (0, context.Canceled)", done, err)
	}
}

// TestShardedPartialGather forces a degraded gather deterministically:
// every segment except 0 stalls in ScanSegmentStartHook until the query
// deadline has expired, so exactly segment 0 (plus any segment whose scan
// never consults the context because it holds no phrases) completes. The
// degraded answer must be bit-identical to a clean gather over exactly
// those segments — the acceptance property of the partial path.
func TestShardedPartialGather(t *testing.T) {
	sx := buildShardedForCancel(t, 4)
	q := corpus.NewQuery(corpus.OpOR, "trade", "bank")
	const k, frac = 5, 1.0

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	ScanSegmentStartHook = func(seg int) {
		if seg != 0 {
			<-ctx.Done()
		}
	}
	defer func() { ScanSegmentStartHook = nil }()

	got, done, err := sx.QuerySMJPartial(ctx, q, k, frac)
	if err != nil {
		t.Fatalf("QuerySMJPartial: %v", err)
	}
	// Segments that hold no universe phrases return before the first
	// context check, so they count as done even when stalled.
	wantDone := 1
	completed := []int{0}
	for i := 1; i < len(sx.segs); i++ {
		if sx.segs[i].ix.Dict.Len() == 0 {
			wantDone++
			completed = append(completed, i)
		}
	}
	if done != wantDone {
		t.Fatalf("segmentsDone = %d, want %d", done, wantDone)
	}
	if done >= len(sx.segs) {
		t.Fatalf("every segment completed (%d); the stall did not degrade the gather", done)
	}

	// Reference: a clean, deadline-free gather over exactly the completed
	// segments.
	ScanSegmentStartHook = nil
	parts := make([]topk.PartialList, len(sx.segs))
	for _, i := range completed {
		if err := sx.scanSegment(context.Background(), i, q, frac, &parts[i]); err != nil {
			t.Fatalf("reference scan of segment %d: %v", i, err)
		}
	}
	want, err := sx.mergeParts(parts, sx.listMergeOptions(q, k))
	if err != nil {
		t.Fatalf("reference merge: %v", err)
	}
	if !bitEq(got, want) {
		t.Fatalf("degraded answer diverged from gather over completed segments:\n got %v\nwant %v", got, want)
	}

	// The non-partial path under the same stall fails whole instead of
	// answering from a subset.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel2()
	ScanSegmentStartHook = func(seg int) {
		if seg != 0 {
			<-ctx2.Done()
		}
	}
	if _, err := sx.QuerySMJ(ctx2, q, k, frac); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("non-partial QuerySMJ under stall = %v, want context.DeadlineExceeded", err)
	}
}

// TestShardedPartialFullCompletion pins that the partial path with a
// generous deadline returns the ordinary full answer: done equals the
// segment count and the results match the non-partial query bit for bit.
func TestShardedPartialFullCompletion(t *testing.T) {
	sx := buildShardedForCancel(t, 4)
	q := corpus.NewQuery(corpus.OpOR, "trade", "bank")
	want, err := sx.QuerySMJ(context.Background(), q, 5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	got, done, err := sx.QuerySMJPartial(ctx, q, 5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if done != len(sx.segs) {
		t.Fatalf("segmentsDone = %d, want %d", done, len(sx.segs))
	}
	if !bitEq(got, want) {
		t.Fatalf("full-completion partial answer diverged:\n got %v\nwant %v", got, want)
	}
}

package core

import (
	"phrasemine/internal/phrasedict"
)

// Helpers bridging the error-returning decode API for tests built over
// heap-resident fixtures, where decode errors mean the fixture itself is
// broken and warrant a panic.

func mustSMJ(ix *Index, frac float64) *SMJIndex {
	s, err := ix.BuildSMJ(frac)
	if err != nil {
		panic(err)
	}
	return s
}

func mustDelta(ix *Index) *Delta {
	d, err := ix.NewDelta()
	if err != nil {
		panic(err)
	}
	return d
}

func mustID(d *phrasedict.Dict, phrase string) (phrasedict.PhraseID, bool) {
	id, ok, err := d.ID(phrase)
	if err != nil {
		panic(err)
	}
	return id, ok
}

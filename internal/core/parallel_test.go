package core

import (
	"bytes"
	"reflect"
	"testing"

	"phrasemine/internal/corpus"
	"phrasemine/internal/synth"
	"phrasemine/internal/textproc"
	"phrasemine/internal/topk"
)

func topkNRAOpts() topk.NRAOptions { return topk.NRAOptions{K: 5} }
func topkSMJOpts() topk.SMJOptions { return topk.SMJOptions{K: 5} }

func parallelTestCorpus(t *testing.T) *corpus.Corpus {
	t.Helper()
	cfg := synth.ReutersLike().Scale(0.015)
	c, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func buildAt(t *testing.T, c *corpus.Corpus, workers, shards int) *Index {
	t.Helper()
	ix, err := Build(c, BuildOptions{
		Extractor: textproc.ExtractorOptions{MinDocFreq: 3},
		Workers:   workers,
		Shards:    shards,
	})
	if err != nil {
		t.Fatalf("Build(workers=%d): %v", workers, err)
	}
	return ix
}

// serialize renders the index's persistent artifacts (phrase dictionary +
// full list index) to bytes; the byte-identity of these artifacts is the
// strongest equivalence statement the system can make.
func serialize(t *testing.T, ix *Index) (dict, lists []byte) {
	t.Helper()
	var db, lb bytes.Buffer
	if _, err := ix.WritePhraseDict(&db); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.WriteListIndex(&lb, 1.0); err != nil {
		t.Fatal(err)
	}
	return db.Bytes(), lb.Bytes()
}

// TestParallelBuildByteIdentical asserts the tentpole determinism contract:
// index construction at any worker/shard count produces byte-identical
// serialized artifacts and structurally identical in-memory indexes to the
// sequential (Workers=1) build.
func TestParallelBuildByteIdentical(t *testing.T) {
	c := parallelTestCorpus(t)
	seq := buildAt(t, c, 1, 0)
	seqDict, seqLists := serialize(t, seq)

	for _, tc := range []struct{ workers, shards int }{
		{2, 0}, {4, 0}, {4, 3}, {8, 31},
	} {
		par := buildAt(t, c, tc.workers, tc.shards)
		parDict, parLists := serialize(t, par)
		if !bytes.Equal(seqDict, parDict) {
			t.Errorf("workers=%d shards=%d: phrase dictionary bytes diverge", tc.workers, tc.shards)
		}
		if !bytes.Equal(seqLists, parLists) {
			t.Errorf("workers=%d shards=%d: list index bytes diverge", tc.workers, tc.shards)
		}
		if !reflect.DeepEqual(seq.PhraseDF, par.PhraseDF) {
			t.Errorf("workers=%d: PhraseDF diverges", tc.workers)
		}
		if !reflect.DeepEqual(seq.PhraseDocs, par.PhraseDocs) {
			t.Errorf("workers=%d: PhraseDocs diverges", tc.workers)
		}
		if !reflect.DeepEqual(seq.Forward, par.Forward) {
			t.Errorf("workers=%d: Forward index diverges", tc.workers)
		}
		for _, f := range seq.Inverted.Features() {
			seqDocs, err := seq.Inverted.Docs(f)
			if err != nil {
				t.Fatal(err)
			}
			parDocs, err := par.Inverted.Docs(f)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seqDocs, parDocs) {
				t.Fatalf("workers=%d: inverted postings diverge for %q", tc.workers, f)
			}
		}
		if seq.Inverted.VocabSize() != par.Inverted.VocabSize() {
			t.Errorf("workers=%d: vocab size %d vs %d", tc.workers, par.Inverted.VocabSize(), seq.Inverted.VocabSize())
		}
	}
}

// TestParallelBuildIdenticalQueryResults runs the same query workload over
// sequential- and parallel-built indexes and requires identical results
// from every algorithm, at full and truncated lists.
func TestParallelBuildIdenticalQueryResults(t *testing.T) {
	c := parallelTestCorpus(t)
	seq := buildAt(t, c, 1, 0)
	par := buildAt(t, c, 4, 9)

	feats := seq.Inverted.TopFeaturesByDocFreq(40)
	queries := make([]corpus.Query, 0, 40)
	for i := 0; i+1 < len(feats) && len(queries) < 30; i += 2 {
		queries = append(queries,
			corpus.NewQuery(corpus.OpOR, feats[i], feats[i+1]),
			corpus.NewQuery(corpus.OpAND, feats[i], feats[i+1]),
		)
	}
	if len(queries) == 0 {
		t.Fatal("no queries harvested")
	}

	smjSeq, smjPar := mustSMJ(seq, 0.5), mustSMJ(par, 0.5)
	if !reflect.DeepEqual(smjSeq.Lists, smjPar.Lists) {
		t.Error("SMJ index (fraction 0.5) diverges between sequential and parallel builds")
	}
	for _, q := range queries {
		rs, _, err := seq.QueryNRA(q, topkNRAOpts())
		if err != nil {
			t.Fatal(err)
		}
		rp, _, err := par.QueryNRA(q, topkNRAOpts())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rs, rp) {
			t.Fatalf("NRA results diverge for %v: %v vs %v", q, rs, rp)
		}
		ss, _, err := seq.QuerySMJ(smjSeq, q, topkSMJOpts())
		if err != nil {
			t.Fatal(err)
		}
		sp, _, err := par.QuerySMJ(smjPar, q, topkSMJOpts())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ss, sp) {
			t.Fatalf("SMJ results diverge for %v: %v vs %v", q, ss, sp)
		}
	}
}

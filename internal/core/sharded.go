package core

// This file implements the sharded multi-segment engine: the corpus is
// partitioned into N contiguous document segments, each indexed as a full,
// independently buildable and snapshottable Index, and queries execute as
// a scatter-gather — per-segment work proportional to the segment, merged
// through the pooled loser-tree partial merger of internal/topk.
//
// # Why sharded answers are bit-identical to the monolith
//
// Every probability the monolithic engine stores is an exact integer
// division: P(q|p) = float64(co)/float64(df). Document partitioning
// decomposes both integers over segments (co = Σ co_s, df = Σ df_s), so
// the gather recombines per-segment integer counts, performs the identical
// division, and accumulates the per-phrase score over query features in
// the same canonical order the sort-merge join uses. The phrase universe
// is also globally exact: each segment extracts at a local document-
// frequency threshold of 1 and the global threshold is applied to the
// summed frequencies, so the global dictionary — ordered by (word count,
// phrase), the same ordering textproc.Extract emits — assigns exactly the
// monolithic PhraseIDs. Sharded NRA/SMJ answers are therefore bit-identical
// (IDs, score bits, tie ordering) to the monolithic SMJ answer, and the GM
// path recombines exact sub-collection frequencies the same way
// (internal/difftest's RunShardedEquivalence locks all of this).
//
// NRA-flavored queries additionally bound per-shard work, in the spirit of
// the TPUT family of distributed top-k algorithms: each segment answers a
// local NRA top-k' (k' starts near k/N) over lists rescaled to the GLOBAL
// document frequency, so per-segment scores are additive partials of the
// exact global OR score (S(p) = Σ_i Σ_s n_si/df(p) = Σ_s S'_s(p)). The
// gather completes the union of local candidates to exact global scores by
// random-accessing every segment, and every non-exhausted shard re-runs
// with a raised k' only while the sum of the per-shard bounds could still
// beat the global k-th score: a phrase hidden in every shard has
// S(p) = Σ_s S'_s(p) ≤ Σ_s λ_s, where λ_s bounds shard s's unreported
// partial scores. AND scores live in log domain and do not decompose
// additively, so AND queries use the exhaustive per-segment scan.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"

	"phrasemine/internal/corpus"
	"phrasemine/internal/diskio"
	"phrasemine/internal/parallel"
	"phrasemine/internal/phrasedict"
	"phrasemine/internal/plist"
	"phrasemine/internal/textproc"
	"phrasemine/internal/topk"
)

const (
	// shardedKSlack pads the first-round per-shard k above ceil(k/N) so
	// mildly skewed shards rarely force a second scatter round.
	shardedKSlack = 4
	// shardedKGrowth multiplies a re-issued shard's k between rounds.
	shardedKGrowth = 4
	// maxGlobalizedFeatures caps the per-feature globalized-list cache
	// (heap-resident rescaled copies of segment lists); overflow resets
	// the whole cache.
	maxGlobalizedFeatures = 1024
)

// segment is one shard of a ShardedIndex: a full Index over a contiguous
// document range, plus the mapping from its dense local phrase IDs to the
// global dictionary.
type segment struct {
	ix *Index
	c  *corpus.Corpus
	// localToGlobal maps the segment's phrase IDs to global IDs. It is
	// strictly ascending because both dictionaries share the (word count,
	// phrase) ordering, so the restriction to the segment's phrase subset
	// preserves order.
	localToGlobal []phrasedict.PhraseID
	// tally is the segment's unfiltered phrase document frequencies (every
	// extracted n-gram at local threshold 1), the exact bookkeeping that
	// lets Flush recompute the global universe without re-extracting
	// unchanged segments. It is nil on manifest-opened engines until the
	// first Flush re-derives it.
	tally map[string]int32
	// gmCounts recycles the GM scatter's per-segment counting arrays
	// (all-zero between uses), mirroring the monolithic engine's pooled GM
	// clones so concurrent GM queries do not allocate O(|P_segment|) each.
	gmCounts sync.Pool
}

// ShardedIndex is the sharded multi-segment engine: N independent segment
// indexes behind one global phrase dictionary, answering queries by
// scatter-gather with answers bit-identical to a monolithic index over the
// same corpus. It is safe for concurrent queries; document updates
// (AddDocument/RemoveDocument/Flush) must be serialized against queries by
// the caller, exactly like rebuilding a monolithic Index (the public Miner
// provides that lock).
type ShardedIndex struct {
	segs  []*segment
	remap corpus.DocRemap
	// dict is the global phrase dictionary; its order — (word count,
	// phrase) — reproduces the monolithic PhraseID assignment exactly.
	dict *phrasedict.Dict
	// globalDF[p] = |docs(D, p)| over the whole corpus, the probability
	// denominator of every gather.
	globalDF []uint32
	vocab    int
	opts     BuildOptions
	workers  int
	pool     *topk.Pool
	scratch  *topk.ScratchPool

	// smjMu guards the map of lazily built per-segment ID-ordered list
	// caches, keyed by fraction like the Miner's monolithic SMJ cache. The
	// mutex covers only slot lookup; each slot builds under its own Once,
	// so concurrent queries build different segments' caches in parallel
	// instead of serializing on one engine-wide lock after a flush.
	smjMu    sync.Mutex
	smjCache map[float64][]*smjSlot

	// globMu guards the map of per-feature globalized-list slots: per-
	// segment score lists rescaled to the global document frequency (the
	// additive partial scores of the adaptive NRA scatter), built once per
	// feature under the slot's Once and invalidated by Flush.
	globMu    sync.Mutex
	globCache map[string]*globSlot

	// globalTally sums the per-segment tallies: every extracted n-gram's
	// corpus-wide document frequency, maintained incrementally so a flush
	// updates the universe in time proportional to the touched segments'
	// tallies, not the corpus. Nil until tallies exist (manifest-opened
	// engines re-derive both on the first Flush).
	globalTally map[string]int32

	// Pending document updates, applied at Flush. Unlike the monolithic
	// delta, pending updates are not visible to queries: the sharded
	// engine trades delta-adjusted reads for a Flush whose cost is
	// proportional to the affected segments (typically just the write
	// segment), not the corpus.
	pendingAdd    []corpus.Document
	pendingRemove map[corpus.DocID]bool

	// broken latches a Flush failure past its point of no return (an
	// effectively unreachable class of errors: dictionary-width
	// violations, snapshot unmap failures). Once set, Flush and
	// persistence refuse loudly instead of silently succeeding over a
	// partially updated engine.
	broken error
}

// BuildSharded partitions the corpus into the given number of contiguous
// document segments, builds every segment index in parallel, and assembles
// the global phrase table. segments is clamped to [1, corpus size].
func BuildSharded(c *corpus.Corpus, opt BuildOptions, segments int) (*ShardedIndex, error) {
	if c == nil || c.Len() == 0 {
		return nil, fmt.Errorf("core: empty corpus")
	}
	if segments < 1 {
		segments = 1
	}
	if segments > c.Len() {
		segments = c.Len()
	}
	workers := parallel.Workers(opt.Workers)
	ranges := parallel.Shards(c.Len(), segments)
	sx := &ShardedIndex{
		opts:     opt,
		workers:  workers,
		pool:     topk.NewPool(workers),
		smjCache: map[float64][]*smjSlot{},
	}
	sx.segs = make([]*segment, len(ranges))
	for i, r := range ranges {
		sc, err := c.Slice(r.Lo, r.Hi)
		if err != nil {
			return nil, err
		}
		sx.segs[i] = &segment{c: sc}
	}

	// Pass 1 (parallel over segments): extract each segment's phrases at
	// local threshold 1, so the global threshold can be applied to exact
	// summed document frequencies.
	stats := make([][]textproc.PhraseStats, len(sx.segs))
	errs := make([]error, len(sx.segs))
	inner := innerWorkers(workers, len(sx.segs))
	parallel.ForEach(len(sx.segs), workers, func(i int) {
		stats[i], errs[i] = extractSegment(sx.segs[i].c, opt, inner)
		if errs[i] == nil {
			sx.segs[i].tally = tallyOf(stats[i])
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: segment extraction: %w", err)
		}
	}

	if err := sx.rebuildUniverse(); err != nil {
		return nil, err
	}

	// Pass 2 (parallel over segments): build each segment index over its
	// universe-filtered stats.
	segOpt := opt
	segOpt.Workers = inner
	parallel.ForEach(len(sx.segs), workers, func(i int) {
		errs[i] = sx.buildSegment(i, stats[i], segOpt)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	sx.assemble()
	return sx, nil
}

// innerWorkers splits a worker budget across parallel segment tasks.
func innerWorkers(workers, segments int) int {
	if segments <= 0 {
		return workers
	}
	w := workers / segments
	if w < 1 {
		w = 1
	}
	return w
}

// extractSegment extracts a segment's phrase statistics at a local
// document-frequency threshold of 1 (the global threshold applies to the
// summed frequencies).
func extractSegment(c *corpus.Corpus, opt BuildOptions, workers int) ([]textproc.PhraseStats, error) {
	ext := opt.Extractor
	ext.MinDocFreq = 1
	ext.Workers = workers
	ext.Shards = 0
	tokens, err := c.TokenSlices()
	if err != nil {
		return nil, err
	}
	return textproc.Extract(tokens, ext)
}

// tallyOf condenses extraction stats into the phrase -> document-frequency
// tally a segment keeps for universe maintenance.
func tallyOf(stats []textproc.PhraseStats) map[string]int32 {
	t := make(map[string]int32, len(stats))
	for _, s := range stats {
		t[s.Phrase] = int32(s.DocFreq)
	}
	return t
}

// resolvedMinDocFreq mirrors textproc's defaulting so the global
// threshold applied over per-segment extractions matches what a
// monolithic Extract would have used.
func resolvedMinDocFreq(opt BuildOptions) int {
	if opt.Extractor.MinDocFreq <= 0 {
		return textproc.DefaultMinDocFreq
	}
	return opt.Extractor.MinDocFreq
}

// rebuildUniverse recomputes the global tally, dictionary and document
// frequencies from scratch over every segment tally: sum per-segment
// frequencies, apply the global threshold, and order by (word count,
// phrase) — exactly the ordering textproc.Extract emits, so global IDs
// equal monolithic IDs. Build-time path; flushes use the incremental
// setSegmentTally + rebuildUniverseTouched pair instead.
func (sx *ShardedIndex) rebuildUniverse() error {
	total := map[string]int32{}
	for _, seg := range sx.segs {
		for p, c := range seg.tally {
			total[p] += c
		}
	}
	sx.globalTally = total
	minDF := resolvedMinDocFreq(sx.opts)
	phrases := make([]string, 0, len(total))
	for p, c := range total {
		if int(c) >= minDF {
			phrases = append(phrases, p)
		}
	}
	return sx.installUniverse(phrases)
}

// installUniverse sorts the universe phrases canonically, builds the
// global dictionary and re-derives the document frequencies from the
// global tally.
func (sx *ShardedIndex) installUniverse(phrases []string) error {
	sort.Slice(phrases, func(i, j int) bool {
		wi, wj := textproc.PhraseLen(phrases[i]), textproc.PhraseLen(phrases[j])
		if wi != wj {
			return wi < wj
		}
		return phrases[i] < phrases[j]
	})
	dict, err := phrasedict.Build(phrases, sx.opts.PhraseWidth)
	if err != nil {
		return fmt.Errorf("core: global phrase dictionary: %w", err)
	}
	df := make([]uint32, len(phrases))
	for i, p := range phrases {
		df[i] = uint32(sx.globalTally[p])
	}
	sx.dict = dict
	sx.globalDF = df
	return nil
}

// setSegmentTally swaps segment i's tally, updating the global tally by
// the difference and accumulating every touched phrase into touched. Cost
// is proportional to the two tallies — the incremental half of universe
// maintenance.
func (sx *ShardedIndex) setSegmentTally(i int, tally map[string]int32, touched map[string]struct{}) {
	for p, c := range sx.segs[i].tally {
		touched[p] = struct{}{}
		if rest := sx.globalTally[p] - c; rest > 0 {
			sx.globalTally[p] = rest
		} else {
			delete(sx.globalTally, p)
		}
	}
	for p, c := range tally {
		touched[p] = struct{}{}
		sx.globalTally[p] += c
	}
	sx.segs[i].tally = tally
}

// rebuildUniverseTouched re-derives the universe after setSegmentTally
// calls, in time proportional to the old universe plus the touched set:
// untouched phrases keep their membership and frequency by construction.
func (sx *ShardedIndex) rebuildUniverseTouched(touched map[string]struct{}) error {
	minDF := resolvedMinDocFreq(sx.opts)
	phrases := make([]string, 0, sx.dict.Len())
	for i := 0; i < sx.dict.Len(); i++ {
		p := sx.dict.MustPhrase(phrasedict.PhraseID(i))
		if _, hit := touched[p]; hit {
			continue // re-evaluated below
		}
		phrases = append(phrases, p)
	}
	for p := range touched {
		if int(sx.globalTally[p]) >= minDF {
			phrases = append(phrases, p)
		}
	}
	return sx.installUniverse(phrases)
}

// buildSegment builds (or rebuilds) segment i's index from its extraction
// stats, filtered to the current global universe, and recomputes its
// local-to-global phrase map.
func (sx *ShardedIndex) buildSegment(i int, stats []textproc.PhraseStats, opt BuildOptions) error {
	seg := sx.segs[i]
	filtered := make([]textproc.PhraseStats, 0, len(stats))
	l2g := make([]phrasedict.PhraseID, 0, len(stats))
	for _, s := range stats {
		g, ok, err := sx.dict.ID(s.Phrase)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		filtered = append(filtered, s)
		l2g = append(l2g, g)
	}
	ix, err := BuildFromStats(seg.c, filtered, opt)
	if err != nil {
		return fmt.Errorf("core: segment %d: %w", i, err)
	}
	old := seg.ix
	seg.ix = ix
	seg.localToGlobal = l2g
	if old != nil {
		if err := old.Close(); err != nil {
			return err
		}
	}
	return nil
}

// assemble recomputes the derived global state — doc-ID remap and
// vocabulary size — from the current segments.
func (sx *ShardedIndex) assemble() {
	sizes := make([]int, len(sx.segs))
	for i, seg := range sx.segs {
		sizes[i] = seg.c.Len()
	}
	sx.remap = corpus.NewDocRemap(sizes)
	seen := map[string]struct{}{}
	for _, seg := range sx.segs {
		for _, f := range seg.ix.Inverted.Features() {
			seen[f] = struct{}{}
		}
	}
	sx.vocab = len(seen)
	if sx.scratch == nil {
		sx.scratch = topk.NewScratchPool(0)
	}
}

// NumSegments reports the segment count N.
func (sx *ShardedIndex) NumSegments() int { return len(sx.segs) }

// NumDocs reports the total corpus size |D| across segments.
func (sx *ShardedIndex) NumDocs() int { return sx.remap.NumDocs() }

// NumPhrases reports the global phrase-universe size |P|.
func (sx *ShardedIndex) NumPhrases() int { return sx.dict.Len() }

// VocabSize reports the number of distinct indexable features |W| across
// segments.
func (sx *ShardedIndex) VocabSize() int { return sx.vocab }

// Workers reports the resolved query-concurrency bound.
func (sx *ShardedIndex) Workers() int { return sx.workers }

// Pool returns the engine's bounded query-time worker pool.
func (sx *ShardedIndex) Pool() *topk.Pool { return sx.pool }

// BuildOptions returns the options the engine was built (or opened) with.
func (sx *ShardedIndex) BuildOptions() BuildOptions { return sx.opts }

// PhraseText resolves a global phrase ID to its string.
func (sx *ShardedIndex) PhraseText(id phrasedict.PhraseID) (string, error) {
	return sx.dict.Phrase(id)
}

// Close releases every segment's resources (snapshot mappings of
// manifest-opened engines). No query may be in flight.
func (sx *ShardedIndex) Close() error {
	var first error
	for _, seg := range sx.segs {
		if seg.ix == nil {
			continue
		}
		if err := seg.ix.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// MemStats aggregates the physical list footprint across segments.
func (sx *ShardedIndex) MemStats() MemStats {
	var out MemStats
	compressed := true
	for _, seg := range sx.segs {
		s := seg.ix.MemStats()
		out.ListEntries += s.ListEntries
		out.ListBytes += s.ListBytes
		out.Postings += s.Postings
		out.PostingBytes += s.PostingBytes
		out.MappedBytes += s.MappedBytes
		out.PackedBlocks += s.PackedBlocks
		out.PackedBytes += s.PackedBytes
		if s.Mapped {
			out.Mapped = true
		}
		if !s.Compressed {
			compressed = false
		}
	}
	out.Compressed = compressed && len(sx.segs) > 0
	if out.ListEntries > 0 {
		out.BytesPerEntry = float64(out.ListBytes) / float64(out.ListEntries)
	}
	if out.Postings > 0 {
		out.BytesPerPosting = float64(out.PostingBytes) / float64(out.Postings)
	}
	return out
}

// fanOut runs fn(i) for i in [0, n) through the engine's bounded pool, or
// inline when single-threaded.
func (sx *ShardedIndex) fanOut(n int, fn func(i int)) {
	if sx.pool == nil || sx.workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	sx.pool.RunN(n, fn)
}

// smjSlot lazily holds one segment's ID-ordered list index at one
// fraction; the Once lets concurrent queries build different slots in
// parallel. A build failure (corrupt compressed lists) is cached in err,
// so every query against the slot observes the same outcome.
type smjSlot struct {
	once sync.Once
	smj  *SMJIndex
	err  error
}

// globSlot lazily holds one feature's per-segment globalized score lists.
type globSlot struct {
	once  sync.Once
	lists []plist.ScoreList
	err   error
}

// segSMJ returns segment i's cached ID-ordered list index at a fraction,
// building it on first use (outside the cache mutex).
func (sx *ShardedIndex) segSMJ(i int, frac float64) (*SMJIndex, error) {
	sx.smjMu.Lock()
	row, ok := sx.smjCache[frac]
	if !ok {
		row = make([]*smjSlot, len(sx.segs))
		for j := range row {
			row[j] = &smjSlot{}
		}
		sx.smjCache[frac] = row
	}
	slot := row[i]
	sx.smjMu.Unlock()
	slot.once.Do(func() {
		slot.smj, slot.err = sx.segs[i].ix.BuildSMJ(frac)
	})
	return slot.smj, slot.err
}

// SelectCount reports |D'| for the query, summed over segments. Segments
// partition the documents, so per-segment counts add exactly.
func (sx *ShardedIndex) SelectCount(q corpus.Query) (int, error) {
	total := 0
	for _, seg := range sx.segs {
		n, err := seg.ix.Inverted.SelectCount(q)
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// Resolve converts gathered top-k results into displayable phrases with
// interestingness estimates, mirroring Index.Resolve bit-for-bit: the
// estimate divides by the same integer |D'| and |D|.
func (sx *ShardedIndex) Resolve(results []topk.Result, q corpus.Query) ([]MinedPhrase, error) {
	dPrimeSize, err := sx.SelectCount(q)
	if err != nil {
		return nil, err
	}
	out := make([]MinedPhrase, len(results))
	for i, r := range results {
		text, err := sx.dict.Phrase(r.Phrase)
		if err != nil {
			return nil, err
		}
		out[i] = MinedPhrase{
			ID:     r.Phrase,
			Phrase: text,
			Score:  r.Score,
			Estimate: topk.EstimatedInterestingness(
				r.Score, q.Op, dPrimeSize, sx.NumDocs()),
		}
	}
	return out, nil
}

// QuerySMJ answers a query with the exhaustive scatter scan: every segment
// merges its ID-ordered lists (truncated per segment when frac < 1) into a
// partial count stream, and the gather merges the streams into the global
// top-k. At full lists the answer is bit-identical to the monolithic SMJ
// answer; at frac < 1 the truncation applies per segment rather than to
// the global lists, a documented approximation. A canceled ctx stops every
// segment scan cooperatively and returns ctx.Err(); nil means no
// cancellation.
func (sx *ShardedIndex) QuerySMJ(ctx context.Context, q corpus.Query, k int, frac float64) ([]topk.Result, error) {
	results, _, err := sx.querySMJ(ctx, q, k, frac, false)
	return results, err
}

// QuerySMJPartial is QuerySMJ with graceful degradation: when ctx expires
// mid-scatter, segments whose scans completed still gather into a merged
// answer instead of the whole query failing. The returned segmentsDone
// reports how many of NumSegments() contributed; when it equals the
// segment count the answer is the ordinary full answer. A partial answer
// is bit-identical to a full gather over exactly the completed segments —
// a scan either streams its segment completely or is dropped whole, so
// degradation never mixes torn streams in. Zero completed segments fail
// with ctx.Err() like the non-partial path.
func (sx *ShardedIndex) QuerySMJPartial(ctx context.Context, q corpus.Query, k int, frac float64) (results []topk.Result, segmentsDone int, err error) {
	return sx.querySMJ(ctx, q, k, frac, true)
}

func (sx *ShardedIndex) querySMJ(ctx context.Context, q corpus.Query, k int, frac float64, allowPartial bool) ([]topk.Result, int, error) {
	if err := q.Validate(); err != nil {
		return nil, 0, err
	}
	if k <= 0 {
		return nil, 0, fmt.Errorf("core: k must be positive, got %d", k)
	}
	if frac <= 0 || frac > 1 {
		frac = 1
	}
	parts := make([]topk.PartialList, len(sx.segs))
	errs := make([]error, len(sx.segs))
	sx.fanOut(len(sx.segs), func(i int) {
		errs[i] = sx.scanSegment(ctx, i, q, frac, &parts[i])
	})
	done := 0
	for i, err := range errs {
		switch {
		case err == nil:
			done++
		case allowPartial && (errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)):
			// Deadline expired mid-scan: drop this segment's torn stream
			// and gather what completed. Any other failure (corruption,
			// structural errors) still fails the whole query.
			parts[i] = topk.PartialList{}
		default:
			return nil, 0, err
		}
	}
	if done == 0 {
		// Nothing completed before the deadline; there is no answer to
		// degrade to.
		return nil, 0, ctx.Err()
	}
	// The gather itself runs to completion even on a degraded query — it
	// merges only completed streams and is the cheap final step that turns
	// them into the answer the deadline was spent producing.
	results, err := sx.mergeParts(parts, sx.listMergeOptions(q, k))
	if err != nil {
		return nil, 0, err
	}
	return results, done, nil
}

// gatherParallelCutoff is the total partial-entry count below which the
// gather runs serially (range partitioning has fixed costs that only pay
// off on large candidate streams).
const gatherParallelCutoff = 4096

// mergeParts runs the gather over per-segment partial lists. Large
// candidate streams are gathered in parallel: the global phrase-ID space
// is split into contiguous ranges (balanced by sampling the largest
// stream), each worker merges its range's sub-streams — zero-copy
// sub-slices, candidates of one phrase never straddle ranges — into a
// range-local top-k, and the range winners re-rank under the same
// (score desc, ID asc) comparator. Selection over disjoint candidate sets
// followed by re-ranking is exactly the global selection, so the parallel
// gather is bit-identical to the serial one.
func (sx *ShardedIndex) mergeParts(parts []topk.PartialList, opt topk.MergeOptions) ([]topk.Result, error) {
	total := 0
	largest := 0
	for i := range parts {
		total += len(parts[i].IDs)
		if len(parts[i].IDs) > len(parts[largest].IDs) {
			largest = i
		}
	}
	workers := sx.workers
	if workers > 1 && total >= gatherParallelCutoff {
		ids := parts[largest].IDs
		if workers > len(ids) {
			workers = len(ids)
		}
		// Range boundaries sampled from the largest stream approximate
		// equal-work splits; dedup keeps ranges strictly increasing.
		bounds := make([]phrasedict.PhraseID, 0, workers-1)
		for j := 1; j < workers; j++ {
			b := ids[len(ids)*j/workers]
			if len(bounds) == 0 || b > bounds[len(bounds)-1] {
				bounds = append(bounds, b)
			}
		}
		if len(bounds) > 0 {
			nRanges := len(bounds) + 1
			results := make([][]topk.Result, nRanges)
			errs := make([]error, nRanges)
			sx.fanOut(nRanges, func(j int) {
				lo := phrasedict.PhraseID(0)
				hasHi := j < len(bounds)
				if j > 0 {
					lo = bounds[j-1]
				}
				sub := make([]topk.PartialList, len(parts))
				for i := range parts {
					p := &parts[i]
					a, _ := slices.BinarySearch(p.IDs, lo)
					b := len(p.IDs)
					if hasHi {
						b, _ = slices.BinarySearch(p.IDs, bounds[j])
					}
					sub[i] = topk.PartialList{
						IDs:    p.IDs[a:b],
						Counts: p.Counts[a*opt.R : b*opt.R],
					}
				}
				s := sx.scratch.Get()
				defer sx.scratch.Put(s)
				results[j], errs[j] = topk.MergePartialsScratch(sub, opt, s)
			})
			if err := firstError(errs); err != nil {
				return nil, diskio.Corruptf("core: gather: %v", err)
			}
			var merged []topk.Result
			for _, r := range results {
				merged = append(merged, r...)
			}
			// Re-rank the range winners with the merger's own selection
			// comparator, so the parallel gather cannot drift from the
			// serial one's tie decisions.
			topk.SortResultsByRank(merged)
			if len(merged) > opt.K {
				merged = merged[:opt.K]
			}
			return merged, nil
		}
	}
	s := sx.scratch.Get()
	defer sx.scratch.Put(s)
	out, err := topk.MergePartialsScratch(parts, opt, s)
	if err != nil {
		// The scatter builds every partial stream itself, so a structural
		// violation (non-ascending IDs, count shape) can only mean the
		// per-segment data it decoded was corrupt.
		return nil, diskio.Corruptf("core: gather: %v", err)
	}
	return out, nil
}

// listMergeOptions assembles the gather configuration of a list-algorithm
// query.
func (sx *ShardedIndex) listMergeOptions(q corpus.Query, k int) topk.MergeOptions {
	return topk.MergeOptions{
		K:  k,
		Op: q.Op,
		R:  len(q.Features),
		DF: sx.globalDF,
	}
}

// ScanSegmentStartHook, when non-nil, is invoked at the start of every
// per-segment exhaustive scan with the segment number. It exists so tests
// can stall chosen segments deterministically (e.g. to force a partial
// gather); production code must leave it nil.
var ScanSegmentStartHook func(segment int)

// scanSegment scans one segment's ID-ordered lists and emits its partial
// count stream: for every phrase group the per-feature probabilities
// convert back to exact integer co-occurrence counts (Prob was built as
// count/df, so round(Prob*df) recovers the count exactly — the relative
// error of one float64 division and multiplication is far below 1/2).
func (sx *ShardedIndex) scanSegment(ctx context.Context, i int, q corpus.Query, frac float64, out *topk.PartialList) error {
	if hook := ScanSegmentStartHook; hook != nil {
		hook(i)
	}
	seg := sx.segs[i]
	ix := seg.ix
	if ix.Dict.Len() == 0 {
		return nil // segment holds none of the universe phrases
	}
	smj, err := sx.segSMJ(i, frac)
	if err != nil {
		return err
	}
	pool := ix.ScratchPool()
	s := pool.Get()
	defer pool.Put(s)
	var cursors []plist.Cursor
	if smj.Blocks != nil {
		cs, blk := s.BlockCursors(len(q.Features))
		for fi, f := range q.Features {
			l, err := smj.Blocks.List(f)
			if err != nil {
				return err
			}
			if !smj.Blocks.Has(f) && ix.restricted && ix.Inverted.Has(f) {
				return fmt.Errorf("core: segment %d SMJ index has no list for %q", i, f)
			}
			blk[fi].Reset(l)
			cs[fi] = &blk[fi]
		}
		cursors = cs
	} else {
		cs, mem := s.MemCursors(len(q.Features))
		for fi, f := range q.Features {
			l, ok := smj.Lists[f]
			if !ok && ix.restricted && ix.Inverted.Has(f) {
				return fmt.Errorf("core: segment %d SMJ index has no list for %q", i, f)
			}
			mem[fi].Reset(l)
			cs[fi] = &mem[fi]
		}
		cursors = cs
	}
	r := len(q.Features)
	return topk.ScanGroupsCtx(ctx, cursors, s, func(local phrasedict.PhraseID, probs []float64, seen uint64) {
		df := float64(ix.PhraseDF[local])
		out.IDs = append(out.IDs, seg.localToGlobal[local])
		for fi := 0; fi < r; fi++ {
			var c uint32
			if seen&(1<<uint(fi)) != 0 {
				c = uint32(math.Round(probs[fi] * df))
			}
			out.Counts = append(out.Counts, c)
		}
	})
}

// QueryNRA answers a query with the adaptive per-shard NRA scatter when
// the bound machinery is sound for it (OR over full lists): each segment
// runs a local NRA top-k', the gather completes the candidate union to
// exact global scores, and shards whose local bound could still beat the
// global k-th score re-run with a raised k'. AND queries and partial-list
// fractions fall back to the exhaustive scan. Either way the answer is the
// canonical (SMJ-identical) global top-k. A canceled ctx stops the local
// NRA runs, the completion lookups and the re-issue loop cooperatively.
func (sx *ShardedIndex) QueryNRA(ctx context.Context, q corpus.Query, k int, frac float64) ([]topk.Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("core: k must be positive, got %d", k)
	}
	if q.Op != corpus.OpOR || (frac > 0 && frac < 1) {
		return sx.QuerySMJ(ctx, q, k, frac)
	}
	return sx.queryNRAAdaptive(ctx, q, k)
}

// globalizedLists returns, for one query feature, every segment's score
// list rescaled to the global document frequency: entry probabilities
// become n_s(w,p)/df(p), so summing a phrase's entries across segments
// yields exactly the monolithic P(w|p). Lists are built on first use per
// feature (one pass over each segment's own list) and cached until the
// next Flush, like the ID-ordered SMJ caches.
func (sx *ShardedIndex) globalizedLists(f string) ([]plist.ScoreList, error) {
	sx.globMu.Lock()
	if sx.globCache == nil {
		sx.globCache = map[string]*globSlot{}
	}
	slot := sx.globCache[f]
	if slot == nil {
		// Bound residency: the rescaled lists are uncompressed heap
		// copies, so an unbounded per-feature cache could grow toward a
		// full duplicate of the list section under a vocabulary-spanning
		// workload. Dropping everything on overflow keeps the common
		// skewed-workload case fully cached and merely re-pays the
		// rescale pass for cold features.
		if len(sx.globCache) >= maxGlobalizedFeatures {
			sx.globCache = map[string]*globSlot{}
		}
		slot = &globSlot{}
		sx.globCache[f] = slot
	}
	sx.globMu.Unlock()
	slot.once.Do(func() {
		slot.lists, slot.err = sx.buildGlobalizedLists(f)
	})
	return slot.lists, slot.err
}

// buildGlobalizedLists performs one feature's rescale pass over every
// segment's own list, fanning the independent per-segment passes out
// through the engine pool (this is the cold path after a Flush or cache
// reset; steady-state queries hit the cache).
func (sx *ShardedIndex) buildGlobalizedLists(f string) ([]plist.ScoreList, error) {
	lists := make([]plist.ScoreList, len(sx.segs))
	errs := make([]error, len(sx.segs))
	sx.fanOut(len(sx.segs), func(i int) {
		lists[i], errs[i] = sx.globalizeSegmentList(sx.segs[i], f)
	})
	if err := firstError(errs); err != nil {
		return nil, err
	}
	return lists, nil
}

// globalizeSegmentList rescales one segment's score list for one feature
// to the global document frequency.
func (sx *ShardedIndex) globalizeSegmentList(seg *segment, f string) (plist.ScoreList, error) {
	ix := seg.ix
	if ix.Dict.Len() == 0 {
		return nil, nil
	}
	var entries []plist.Entry
	emit := func(e plist.Entry) {
		local := e.Phrase
		n := probCount(e.Prob, ix.PhraseDF[local])
		g := seg.localToGlobal[local]
		entries = append(entries, plist.Entry{
			Phrase: local,
			Prob:   float64(n) / float64(sx.globalDF[g]),
		})
	}
	if ix.Blocks != nil {
		l, err := ix.featureBlockList(f)
		if err != nil {
			return nil, err
		}
		cur := plist.NewBlockCursor(l)
		for {
			e, ok := cur.Next()
			if !ok {
				break
			}
			emit(e)
		}
		if err := cur.Err(); err != nil {
			return nil, err
		}
	} else {
		l, err := ix.featureList(f)
		if err != nil {
			return nil, err
		}
		for _, e := range l {
			emit(e)
		}
	}
	plist.SortScoreOrder(entries)
	return entries, nil
}

// queryNRAAdaptive is the adaptive per-shard scatter for OR queries over
// full lists. Every segment runs NRA over its globalized lists, reporting
// its local top-k' candidates (by additive partial score) plus λ_s, an
// upper bound on any unreported partial; the gather completes candidates
// to exact global scores and, while Σ_s λ_s — the best score any fully
// hidden phrase could reach — is still at least the current global k-th
// score θ, re-issues every non-exhausted shard with k' raised by
// shardedKGrowth (the stop test is the aggregate bound, not a per-shard
// one: a single shard's λ cannot bound a phrase hidden across several).
func (sx *ShardedIndex) queryNRAAdaptive(ctx context.Context, q corpus.Query, k int) ([]topk.Result, error) {
	n := len(sx.segs)
	r := len(q.Features)
	perFeature := make([][]plist.ScoreList, r)
	for fi, f := range q.Features {
		lists, err := sx.globalizedLists(f)
		if err != nil {
			return nil, err
		}
		perFeature[fi] = lists
	}
	kLocal := make([]int, n)
	base := (k+n-1)/n + shardedKSlack
	for i := range kLocal {
		kLocal[i] = base
	}
	lambda := make([]float64, n)
	exhausted := make([]bool, n)
	localRes := make([][]topk.Result, n)
	errs := make([]error, n)
	candSet := make(map[phrasedict.PhraseID]struct{})
	active := make([]int, n)
	for i := range active {
		active[i] = i
	}
	for {
		sx.fanOut(len(active), func(j int) {
			i := active[j]
			seg := sx.segs[i]
			pool := seg.ix.ScratchPool()
			s := pool.Get()
			defer pool.Put(s)
			cursors, mem := s.MemCursors(r)
			for fi := 0; fi < r; fi++ {
				mem[fi].Reset(perFeature[fi][i])
				cursors[fi] = &mem[fi]
			}
			localRes[i], _, errs[i] = topk.NRAScratch(cursors, topk.NRAOptions{K: kLocal[i], Op: corpus.OpOR, Ctx: ctx}, s)
		})
		for _, i := range active {
			if errs[i] != nil {
				return nil, errs[i]
			}
			res := localRes[i]
			if len(res) < kLocal[i] {
				// The segment surrendered every candidate it has: a
				// hidden phrase has no entries here, partial score 0.
				exhausted[i] = true
				lambda[i] = 0
			} else {
				// No phrase outside the returned set can have a partial
				// score above the k'-th returned upper bound.
				lambda[i] = res[len(res)-1].Upper
			}
			seg := sx.segs[i]
			for _, r := range res {
				candSet[seg.localToGlobal[r.Phrase]] = struct{}{}
			}
		}
		cands := make([]phrasedict.PhraseID, 0, len(candSet))
		for id := range candSet {
			cands = append(cands, id)
		}
		slices.Sort(cands)
		results, err := sx.completeAndMerge(ctx, q, k, cands)
		if err != nil {
			return nil, err
		}
		theta := math.Inf(-1)
		if len(results) == k {
			theta = results[k-1].Score
		}
		// A phrase reported nowhere has global score Σ_s (partial in s)
		// <= Σ_s λ_s; once that sum drops below θ the top-k is final.
		hiddenBound := 0.0
		for i := 0; i < n; i++ {
			if !exhausted[i] {
				hiddenBound += lambda[i]
			}
		}
		var reissue []int
		if math.IsInf(theta, -1) || hiddenBound >= theta {
			for i := 0; i < n; i++ {
				if !exhausted[i] {
					reissue = append(reissue, i)
					kLocal[i] *= shardedKGrowth
				}
			}
		}
		if len(reissue) == 0 {
			return results, nil
		}
		// A re-issue round is a fresh batch of segment scans; stop here if
		// the query was canceled while the gather was merging.
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		active = reissue
	}
}

// completeAndMerge computes every candidate's exact global score — per-
// feature counts looked up in every segment, summed, divided by the global
// document frequency — and selects the top-k through the partial merger.
// Re-issue rounds re-complete the whole accumulated candidate set (a
// deliberate simplicity trade-off: rounds are bounded by the geometric k'
// growth, and per-candidate completion is a handful of log-time lookups).
func (sx *ShardedIndex) completeAndMerge(ctx context.Context, q corpus.Query, k int, cands []phrasedict.PhraseID) ([]topk.Result, error) {
	parts := make([]topk.PartialList, len(sx.segs))
	errs := make([]error, len(sx.segs))
	sx.fanOut(len(sx.segs), func(i int) {
		parts[i], errs[i] = sx.completeSegment(ctx, i, q, cands)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return sx.mergeParts(parts, sx.listMergeOptions(q, k))
}

// completeSegment looks up each candidate's per-feature co-occurrence
// counts in one segment's full ID-ordered lists: binary search on raw
// lists, skip-table gallops (SkipTo) on block-compressed ones.
func (sx *ShardedIndex) completeSegment(ctx context.Context, i int, q corpus.Query, cands []phrasedict.PhraseID) (topk.PartialList, error) {
	// One check per segment visit suffices: completion is a bounded number
	// of log-time lookups, orders of magnitude cheaper than a list scan.
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return topk.PartialList{}, err
		}
	}
	seg := sx.segs[i]
	l2g := seg.localToGlobal
	var (
		locals  []phrasedict.PhraseID
		globals []phrasedict.PhraseID
	)
	for _, g := range cands {
		if j, found := slices.BinarySearch(l2g, g); found {
			locals = append(locals, phrasedict.PhraseID(j))
			globals = append(globals, g)
		}
	}
	r := len(q.Features)
	out := topk.PartialList{IDs: globals}
	if len(globals) == 0 {
		return out, nil
	}
	out.Counts = make([]uint32, len(globals)*r)
	smj, err := sx.segSMJ(i, 1.0)
	if err != nil {
		return out, err
	}
	for fi, f := range q.Features {
		if smj.Blocks != nil {
			l, err := smj.Blocks.List(f)
			if err != nil {
				return out, err
			}
			cur := plist.NewBlockCursor(l)
			var pend plist.Entry
			havePend := false
			for ci, local := range locals {
				if havePend {
					if pend.Phrase > local {
						continue // no entry for this candidate
					}
					if pend.Phrase == local {
						out.Counts[ci*r+fi] = probCount(pend.Prob, seg.ix.PhraseDF[local])
						havePend = false
						continue
					}
					havePend = false // stale: the cursor is already past it
				}
				e, ok := cur.SkipTo(local)
				if !ok {
					if err := cur.Err(); err != nil {
						return out, err
					}
					break // list exhausted: no later candidate matches
				}
				if e.Phrase == local {
					out.Counts[ci*r+fi] = probCount(e.Prob, seg.ix.PhraseDF[local])
				} else {
					pend, havePend = e, true
				}
			}
		} else {
			l := smj.Lists[f]
			pos := 0
			for ci, local := range locals {
				j := pos + sort.Search(len(l)-pos, func(x int) bool { return l[pos+x].Phrase >= local })
				pos = j
				if j < len(l) && l[j].Phrase == local {
					out.Counts[ci*r+fi] = probCount(l[j].Prob, seg.ix.PhraseDF[local])
				}
			}
		}
	}
	return out, nil
}

// probCount recovers the exact integer co-occurrence count from a stored
// probability: Prob was built as float64(count)/float64(df), and one
// division plus one multiplication stay within a few ulps — far below the
// 1/2 that rounding tolerates.
func probCount(prob float64, df uint32) uint32 {
	return uint32(math.Round(prob * float64(df)))
}

// QueryGM answers a query exactly by scatter-gathering the forward-index
// baseline: every segment counts phrase frequencies over its own slice of
// D' (GM's merge-count), and the gather sums the integer frequencies and
// divides by the global document frequency — the identical arithmetic and
// (score, ID) tie ordering as the monolithic GM/Exact baselines.
func (sx *ShardedIndex) QueryGM(ctx context.Context, q corpus.Query, k int) ([]topk.Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("core: k must be positive, got %d", k)
	}
	parts := make([]topk.PartialList, len(sx.segs))
	errs := make([]error, len(sx.segs))
	sx.fanOut(len(sx.segs), func(i int) {
		parts[i], errs[i] = sx.gmSegment(ctx, i, q)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return sx.mergeParts(parts, topk.MergeOptions{
		K:  k,
		Op: corpus.OpOR, // score is the plain frequency ratio
		R:  1,
		DF: sx.globalDF,
	})
}

// gmSegment merge-counts phrase frequencies over one segment's slice of
// the sub-collection, GM-style.
func (sx *ShardedIndex) gmSegment(ctx context.Context, i int, q corpus.Query) (topk.PartialList, error) {
	seg := sx.segs[i]
	ix := seg.ix
	var out topk.PartialList
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return out, err
		}
	}
	if ix.Dict.Len() == 0 {
		return out, nil
	}
	if err := ix.materializeDocs(); err != nil {
		return out, err
	}
	dPrime, err := ix.Inverted.Select(q)
	if err != nil {
		return out, err
	}
	// Pooled counting scratch (returned all-zero): the per-query cost is
	// the touched set, not |P_segment|.
	counts, _ := seg.gmCounts.Get().([]uint32)
	if len(counts) < ix.Dict.Len() {
		counts = make([]uint32, ix.Dict.Len())
	}
	var touched []phrasedict.PhraseID
	for _, d := range dPrime {
		for _, p := range ix.Forward[d] {
			if counts[p] == 0 {
				touched = append(touched, p)
			}
			counts[p]++
		}
	}
	slices.Sort(touched)
	out.IDs = make([]phrasedict.PhraseID, 0, len(touched))
	out.Counts = make([]uint32, 0, len(touched))
	for _, p := range touched {
		out.IDs = append(out.IDs, seg.localToGlobal[p])
		out.Counts = append(out.Counts, counts[p])
		counts[p] = 0
	}
	seg.gmCounts.Put(counts)
	return out, nil
}

// AddDocument registers a new document; it becomes visible (and is routed
// to the write segment) at the next Flush.
func (sx *ShardedIndex) AddDocument(d corpus.Document) {
	sx.pendingAdd = append(sx.pendingAdd, d)
}

// RemoveDocument registers the deletion of the document with the given
// global ID, applied at the next Flush.
func (sx *ShardedIndex) RemoveDocument(id corpus.DocID) error {
	if _, _, err := sx.remap.Split(id); err != nil {
		return err
	}
	if sx.pendingRemove[id] {
		return fmt.Errorf("core: doc %d already scheduled for removal", id)
	}
	if sx.pendingRemove == nil {
		sx.pendingRemove = map[corpus.DocID]bool{}
	}
	sx.pendingRemove[id] = true
	return nil
}

// PendingUpdates reports the number of un-flushed document changes.
func (sx *ShardedIndex) PendingUpdates() int {
	return len(sx.pendingAdd) + len(sx.pendingRemove)
}

// DiscardPendingUpdates drops every un-applied document change. It is the
// recovery path for a refused Flush (e.g. a removal set that would empty
// a segment): pending updates cannot be cancelled individually, and both
// Flush and manifest persistence refuse while they exist.
func (sx *ShardedIndex) DiscardPendingUpdates() {
	sx.pendingAdd = nil
	sx.pendingRemove = nil
}

// Flush applies pending document updates: additions route to the write
// segment (the last one) and removals to their owning segments, so only
// the touched segments re-extract and rebuild. The global universe is then
// recomputed from the per-segment tallies, and any untouched segment that
// contains a phrase whose universe membership changed is rebuilt too —
// exactness is preserved, and the typical flush rebuilds one segment.
func (sx *ShardedIndex) Flush() error {
	if sx.broken != nil {
		return fmt.Errorf("core: engine is inconsistent after a failed flush (%w); rebuild it from the corpus or a manifest", sx.broken)
	}
	if sx.PendingUpdates() == 0 {
		return nil
	}
	n := len(sx.segs)
	if err := sx.ensureTallies(); err != nil {
		return err
	}

	removed := make([]map[corpus.DocID]bool, n)
	for id := range sx.pendingRemove {
		s, local, err := sx.remap.Split(id)
		if err != nil {
			return err
		}
		if removed[s] == nil {
			removed[s] = map[corpus.DocID]bool{}
		}
		removed[s][local] = true
	}
	changed := make([]bool, n)
	for s := range removed {
		if removed[s] != nil {
			changed[s] = true
		}
	}
	writeSeg := n - 1
	if len(sx.pendingAdd) > 0 {
		changed[writeSeg] = true
	}
	// Stage the changed segments' new corpora and re-extract them WITHOUT
	// touching engine state, so a refused or failed flush leaves the
	// engine (and the still-pending updates) fully consistent for a retry.
	numChanged := 0
	newCorpora := make([]*corpus.Corpus, n)
	for s := 0; s < n; s++ {
		if !changed[s] {
			continue
		}
		numChanged++
		old := sx.segs[s].c
		nc := corpus.New()
		for i := 0; i < old.Len(); i++ {
			if removed[s] != nil && removed[s][corpus.DocID(i)] {
				continue
			}
			doc, err := old.Doc(corpus.DocID(i))
			if err != nil {
				return err
			}
			if _, err := nc.Add(doc); err != nil {
				return err
			}
		}
		if s == writeSeg {
			for _, d := range sx.pendingAdd {
				if _, err := nc.Add(d); err != nil {
					return err
				}
			}
		}
		if nc.Len() == 0 {
			return fmt.Errorf("core: segment %d would be empty after removals; sharded segments cannot be empty", s)
		}
		newCorpora[s] = nc
	}
	stats := make([][]textproc.PhraseStats, n)
	newTallies := make([]map[string]int32, n)
	errs := make([]error, n)
	inner := innerWorkers(sx.workers, numChanged)
	sx.fanOut(n, func(i int) {
		if !changed[i] {
			return
		}
		stats[i], errs[i] = extractSegment(newCorpora[i], sx.opts, inner)
		if errs[i] == nil {
			newTallies[i] = tallyOf(stats[i])
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	// Point of no return: install the staged corpora and consume the
	// pending updates — the new corpora embody them, so a retry after a
	// later failure must not re-apply removal IDs against the already-
	// shifted documents. (Errors past this point — snapshot unmap failures,
	// dictionary-width violations — leave the engine needing a rebuild,
	// but never silently corrupt data on retry.)
	for s := 0; s < n; s++ {
		if changed[s] {
			sx.segs[s].c = newCorpora[s]
		}
	}
	sx.pendingAdd = nil
	sx.pendingRemove = nil

	oldPhrases := make(map[string]bool, sx.dict.Len())
	for i := 0; i < sx.dict.Len(); i++ {
		oldPhrases[sx.dict.MustPhrase(phrasedict.PhraseID(i))] = true
	}
	// Incremental universe maintenance: apply the changed segments' tally
	// deltas and re-evaluate only the touched phrases.
	touched := map[string]struct{}{}
	for i := 0; i < n; i++ {
		if changed[i] {
			sx.setSegmentTally(i, newTallies[i], touched)
		}
	}
	if err := sx.rebuildUniverseTouched(touched); err != nil {
		return sx.failFlush(err)
	}
	// Membership delta: phrases that entered or left the universe force a
	// rebuild of every segment containing them.
	var delta []string
	for i := 0; i < sx.dict.Len(); i++ {
		p := sx.dict.MustPhrase(phrasedict.PhraseID(i))
		if oldPhrases[p] {
			delete(oldPhrases, p)
		} else {
			delta = append(delta, p)
		}
	}
	for p := range oldPhrases {
		delta = append(delta, p)
	}
	rebuild := make([]bool, n)
	copy(rebuild, changed)
	for s := 0; s < n; s++ {
		if rebuild[s] {
			continue
		}
		for _, p := range delta {
			if sx.segs[s].tally[p] > 0 {
				rebuild[s] = true
				break
			}
		}
	}

	numRebuild := 0
	for s := 0; s < n; s++ {
		if rebuild[s] {
			numRebuild++
		}
	}
	segOpt := sx.opts
	segOpt.Workers = innerWorkers(sx.workers, numRebuild)
	sx.fanOut(n, func(i int) {
		if !rebuild[i] {
			return
		}
		if stats[i] == nil {
			stats[i], errs[i] = extractSegment(sx.segs[i].c, sx.opts, segOpt.Workers)
			if errs[i] != nil {
				return
			}
		}
		errs[i] = sx.buildSegment(i, stats[i], segOpt)
	})
	for _, err := range errs {
		if err != nil {
			return sx.failFlush(err)
		}
	}
	// Untouched segments keep their indexes but re-anchor their phrase IDs
	// in the (possibly shifted) global dictionary.
	for s := 0; s < n; s++ {
		if rebuild[s] {
			continue
		}
		seg := sx.segs[s]
		l2g := make([]phrasedict.PhraseID, seg.ix.Dict.Len())
		for local := 0; local < seg.ix.Dict.Len(); local++ {
			g, ok, err := sx.dict.ID(seg.ix.Dict.MustPhrase(phrasedict.PhraseID(local)))
			if err != nil {
				return sx.failFlush(err)
			}
			if !ok {
				return sx.failFlush(fmt.Errorf("core: segment %d phrase %q vanished from the universe without a rebuild", s, seg.ix.Dict.MustPhrase(phrasedict.PhraseID(local))))
			}
			l2g[local] = g
		}
		seg.localToGlobal = l2g
	}

	sx.assemble()
	sx.smjMu.Lock()
	sx.smjCache = map[float64][]*smjSlot{}
	sx.smjMu.Unlock()
	sx.globMu.Lock()
	sx.globCache = nil
	sx.globMu.Unlock()
	return nil
}

// failFlush latches a Flush failure past the point of no return so every
// later Flush and persistence attempt refuses loudly instead of silently
// succeeding over a partially updated engine.
func (sx *ShardedIndex) failFlush(err error) error {
	sx.broken = err
	return err
}

// ensureTallies re-derives the per-segment phrase tallies for segments
// missing them (manifest-opened engines discard tallies; the first Flush
// pays one re-extraction per segment to restore exact universe
// maintenance).
func (sx *ShardedIndex) ensureTallies() error {
	missing := 0
	for _, seg := range sx.segs {
		if seg.tally == nil {
			missing++
		}
	}
	if missing == 0 {
		return nil
	}
	errs := make([]error, len(sx.segs))
	inner := innerWorkers(sx.workers, missing)
	sx.fanOut(len(sx.segs), func(i int) {
		if sx.segs[i].tally != nil {
			return
		}
		stats, err := extractSegment(sx.segs[i].c, sx.opts, inner)
		if err != nil {
			errs[i] = err
			return
		}
		sx.segs[i].tally = tallyOf(stats)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if sx.globalTally == nil {
		total := map[string]int32{}
		for _, seg := range sx.segs {
			for p, c := range seg.tally {
				total[p] += c
			}
		}
		sx.globalTally = total
	}
	return nil
}

// PhraseDocFreqByText reports the corpus-wide document frequency of a
// phrase given by its canonical text, zero (with no error) when it is not
// in the global dictionary — the sharded counterpart of
// Index.PhraseDocFreqByText for the live-tail gather merge.
func (sx *ShardedIndex) PhraseDocFreqByText(phrase string) (uint32, error) {
	id, ok, err := sx.dict.ID(phrase)
	if err != nil || !ok {
		return 0, err
	}
	return sx.globalDF[id], nil
}

package core

// This file persists a fully built Index as a diskio snapshot and loads it
// back without re-running any build stage. The snapshot holds every
// structure the query paths need — the tokenized corpus, the feature
// inverted index, the phrase dictionary, the phrase-doc lists (with their
// document frequencies), the GM-style forward index, and the full
// score-ordered word lists — each in its own checksummed section, plus a
// JSON meta section recording the build options so a loaded index can keep
// accepting deltas and Flush-rebuilds exactly like the original.

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"phrasemine/internal/corpus"
	"phrasemine/internal/diskio"
	"phrasemine/internal/parallel"
	"phrasemine/internal/phrasedict"
	"phrasemine/internal/plist"
	"phrasemine/internal/textproc"
	"phrasemine/internal/topk"
)

// SnapshotVersion is the current snapshot format version. Readers reject
// any other version, so incompatible format changes must bump it.
//
// Version 2 switched the inverted-index and word-list sections to the
// block-compressed physical layout (corpus.AppendBlockIndex and
// plist.BlockSet) inside the page-aligned diskio container, enabling the
// zero-copy mmap open (OpenSnapshotFile) alongside the fully verified
// heap load (LoadSnapshot).
const SnapshotVersion = 2

// Snapshot section names.
const (
	sectionMeta       = "core/meta"
	sectionCorpus     = "core/corpus"
	sectionInverted   = "core/inverted"
	sectionDict       = "core/dict"
	sectionPhraseDocs = "core/phrasedocs"
	sectionForward    = "core/forward"
	sectionLists      = "core/lists"
)

// snapshotMeta is the JSON-encoded build provenance of a snapshot.
type snapshotMeta struct {
	Extractor    textproc.ExtractorOptions `json:"extractor"`
	PhraseWidth  int                       `json:"phrase_width,omitempty"`
	Restricted   bool                      `json:"restricted,omitempty"`
	ListFeatures []string                  `json:"list_features,omitempty"`
	Compression  bool                      `json:"compression,omitempty"`
	// Codec records the block-codec policy the index was built with, so a
	// reloaded index rebuilds SMJ caches and delta flushes with the same
	// policy. Old snapshots lack the field and unmarshal to CodecAuto (0).
	Codec uint8 `json:"codec,omitempty"`
}

// AddSnapshotSections appends the index's sections to a snapshot under
// construction, so callers (the public Miner) can prepend sections of
// their own in the same container.
func (ix *Index) AddSnapshotSections(w *diskio.SnapshotWriter) error {
	if err := ix.materializeDocs(); err != nil {
		return err
	}
	extractor := ix.opts.Extractor
	// Concurrency knobs are runtime properties of the loading process,
	// not of the persisted index.
	extractor.Workers, extractor.Shards = 0, 0
	meta, err := json.Marshal(snapshotMeta{
		Extractor:    extractor,
		PhraseWidth:  ix.opts.PhraseWidth,
		Restricted:   ix.restricted,
		ListFeatures: ix.opts.ListFeatures,
		Compression:  ix.opts.Compression,
		Codec:        uint8(ix.opts.Codec),
	})
	if err != nil {
		return fmt.Errorf("core: encoding snapshot meta: %w", err)
	}
	if err := w.Add(sectionMeta, meta); err != nil {
		return err
	}
	corpusBytes, err := ix.Corpus.AppendBinary(nil)
	if err != nil {
		return err
	}
	if err := w.Add(sectionCorpus, corpusBytes); err != nil {
		return err
	}
	inv, err := ix.Inverted.AppendBlockIndexCodec(nil, ix.opts.Codec)
	if err != nil {
		return err
	}
	if err := w.Add(sectionInverted, inv); err != nil {
		return err
	}
	var dict bytes.Buffer
	if _, err := ix.Dict.WriteTo(&dict); err != nil {
		return err
	}
	if err := w.Add(sectionDict, dict.Bytes()); err != nil {
		return err
	}
	if err := w.Add(sectionPhraseDocs, appendIDLists(nil, ix.PhraseDocs)); err != nil {
		return err
	}
	fwd := make([][]corpus.DocID, len(ix.Forward))
	for d, phrases := range ix.Forward {
		// Reuse the DocID-list codec; PhraseID and DocID are both uint32
		// and both lists are strictly increasing.
		fwd[d] = phraseIDsAsDocIDs(phrases)
	}
	if err := w.Add(sectionForward, appendIDLists(nil, fwd)); err != nil {
		return err
	}
	// The word lists persist in their block-compressed form regardless of
	// the in-memory Compression knob: a compressed index hands over its
	// BlockSet bytes directly; an uncompressed one compresses on the way
	// out. Both produce identical bytes for identical lists, so snapshot
	// determinism is preserved across the knob.
	blocks := ix.Blocks
	if blocks == nil {
		blocks, err = plist.BuildBlockSetCodec(ix.Lists, ix.opts.Codec)
		if err != nil {
			return fmt.Errorf("core: compressing word lists: %w", err)
		}
	}
	return w.Add(sectionLists, blocks.AppendTo(nil))
}

// WriteSnapshot serializes the index as a standalone snapshot.
func (ix *Index) WriteSnapshot(w io.Writer) (int64, error) {
	sw := diskio.NewSnapshotWriter(SnapshotVersion)
	if err := ix.AddSnapshotSections(sw); err != nil {
		return 0, err
	}
	return sw.WriteTo(w)
}

// LoadSnapshot reads a snapshot written by WriteSnapshot. workers bounds
// the loaded index's query concurrency (0 selects GOMAXPROCS); it is a
// runtime knob of the loading process, not part of the persisted state.
func LoadSnapshot(r io.Reader, workers int) (*Index, error) {
	snap, err := diskio.ReadSnapshot(r, SnapshotVersion)
	if err != nil {
		return nil, err
	}
	return LoadSnapshotSections(snap, workers)
}

// LoadSnapshotSections reconstructs an Index from an already parsed
// snapshot container (whose checksums ReadSnapshot has verified). Every
// section is decoded eagerly; the snapshot's Compression flag decides
// whether the word lists stay block-compressed or decode to raw slices.
func LoadSnapshotSections(snap *diskio.Snapshot, workers int) (*Index, error) {
	metaBytes, err := snap.MustSection(sectionMeta)
	if err != nil {
		return nil, err
	}
	var meta snapshotMeta
	if err := json.Unmarshal(metaBytes, &meta); err != nil {
		return nil, fmt.Errorf("core: decoding snapshot meta: %w", err)
	}

	corpusBytes, err := snap.MustSection(sectionCorpus)
	if err != nil {
		return nil, err
	}
	c, err := corpus.DecodeCorpus(corpusBytes)
	if err != nil {
		return nil, err
	}
	invBytes, err := snap.MustSection(sectionInverted)
	if err != nil {
		return nil, err
	}
	inv, err := corpus.OpenBlockInverted(invBytes)
	if err != nil {
		return nil, err
	}
	if !meta.Compression {
		// Uncompressed operation decodes postings eagerly, restoring the
		// exact pre-compression memory layout and access costs.
		if err := inv.MaterializeAll(); err != nil {
			return nil, err
		}
	}
	dictBytes, err := snap.MustSection(sectionDict)
	if err != nil {
		return nil, err
	}
	dict, err := phrasedict.ReadFrom(bytes.NewReader(dictBytes))
	if err != nil {
		return nil, err
	}
	pdBytes, err := snap.MustSection(sectionPhraseDocs)
	if err != nil {
		return nil, err
	}
	phraseDocs, err := decodeIDLists(pdBytes, uint64(c.Len()))
	if err != nil {
		return nil, fmt.Errorf("core: phrase-doc section: %w", err)
	}
	fwdBytes, err := snap.MustSection(sectionForward)
	if err != nil {
		return nil, err
	}
	fwdAsDocs, err := decodeIDLists(fwdBytes, uint64(dict.Len()))
	if err != nil {
		return nil, fmt.Errorf("core: forward section: %w", err)
	}
	listBytes, err := snap.MustSection(sectionLists)
	if err != nil {
		return nil, err
	}
	blocks, err := plist.OpenBlockSet(listBytes)
	if err != nil {
		return nil, err
	}

	// Cross-section consistency: a snapshot assembled from mismatched
	// builds must not load.
	if inv.NumDocs() != c.Len() {
		return nil, fmt.Errorf("core: snapshot inconsistent: inverted index covers %d docs, corpus has %d", inv.NumDocs(), c.Len())
	}
	if len(phraseDocs) != dict.Len() {
		return nil, fmt.Errorf("core: snapshot inconsistent: %d phrase-doc lists, dictionary has %d phrases", len(phraseDocs), dict.Len())
	}
	if len(fwdAsDocs) != c.Len() {
		return nil, fmt.Errorf("core: snapshot inconsistent: forward index covers %d docs, corpus has %d", len(fwdAsDocs), c.Len())
	}

	resolved := parallel.Workers(workers)
	ix := &Index{
		Corpus:     c,
		Inverted:   inv,
		Dict:       dict,
		PhraseDocs: phraseDocs,
		PhraseDF:   make([]uint32, len(phraseDocs)),
		Forward:    make([][]phrasedict.PhraseID, len(fwdAsDocs)),
		opts: BuildOptions{
			Extractor:    meta.Extractor,
			ListFeatures: meta.ListFeatures,
			PhraseWidth:  meta.PhraseWidth,
			Workers:      workers,
			Compression:  meta.Compression,
			Codec:        plist.BlockCodec(meta.Codec),
		},
		restricted: meta.Restricted,
		workers:    resolved,
		pool:       topk.NewPool(resolved),
	}
	if meta.Compression {
		ix.Blocks = blocks
	} else {
		lists, err := blocks.DecodeAllScoreLists()
		if err != nil {
			return nil, err
		}
		ix.Lists = lists
	}
	for p, docs := range phraseDocs {
		ix.PhraseDF[p] = uint32(len(docs))
	}
	for d, ids := range fwdAsDocs {
		ix.Forward[d] = docIDsAsPhraseIDs(ids)
	}
	return ix, nil
}

// OpenSnapshotFile memory-maps a snapshot written by WriteSnapshot and
// builds a query-ready Index over the mapping without decoding any list:
// the word lists and inverted postings stay in their block-compressed
// mapped form (cursors decode blocks on demand into pooled scratch), the
// phrase dictionary resolves IDs by offset arithmetic in place, and the
// corpus documents plus phrase-doc/forward sections decode lazily on first
// use (GM/Exact baselines, delta updates, document endpoints). Open cost is
// O(section directories); resident memory is demand-paged and shared
// across processes mapping the same file.
//
// Unlike LoadSnapshot, section checksums are not verified (that would read
// the whole file); the block codecs validate structure as they decode, so
// corruption surfaces as query errors. Call Close when done — after it, no
// query may run on the index.
func OpenSnapshotFile(path string, workers int) (*Index, error) {
	snap, err := diskio.MapSnapshotFile(path, SnapshotVersion)
	if err != nil {
		return nil, err
	}
	ix, err := OpenSnapshotSections(snap, workers)
	if err != nil {
		snap.Close()
		return nil, err
	}
	return ix, nil
}

// OpenSnapshotSections assembles the lazy Index over an already mapped
// snapshot (whose additional sections the caller — e.g. the public Miner —
// may have consumed). The index takes ownership of the mapping: its Close
// unmaps it.
func OpenSnapshotSections(snap *diskio.MappedSnapshot, workers int) (*Index, error) {
	metaBytes, err := snap.MustSection(sectionMeta)
	if err != nil {
		return nil, err
	}
	var meta snapshotMeta
	if err := json.Unmarshal(metaBytes, &meta); err != nil {
		return nil, fmt.Errorf("core: decoding snapshot meta: %w", err)
	}
	corpusBytes, err := snap.MustSection(sectionCorpus)
	if err != nil {
		return nil, err
	}
	c, err := corpus.DecodeCorpusLazy(corpusBytes)
	if err != nil {
		return nil, err
	}
	invBytes, err := snap.MustSection(sectionInverted)
	if err != nil {
		return nil, err
	}
	inv, err := corpus.OpenBlockInverted(invBytes)
	if err != nil {
		return nil, err
	}
	dictBytes, err := snap.MustSection(sectionDict)
	if err != nil {
		return nil, err
	}
	dict, err := phrasedict.FromBytes(dictBytes)
	if err != nil {
		return nil, err
	}
	pdBytes, err := snap.MustSection(sectionPhraseDocs)
	if err != nil {
		return nil, err
	}
	fwdBytes, err := snap.MustSection(sectionForward)
	if err != nil {
		return nil, err
	}
	listBytes, err := snap.MustSection(sectionLists)
	if err != nil {
		return nil, err
	}
	blocks, err := plist.OpenBlockSet(listBytes)
	if err != nil {
		return nil, err
	}
	// Header-level consistency (deep counts are checked lazily when the
	// corresponding sections materialize).
	if inv.NumDocs() != c.Len() {
		return nil, fmt.Errorf("core: snapshot inconsistent: inverted index covers %d docs, corpus has %d", inv.NumDocs(), c.Len())
	}

	resolved := parallel.Workers(workers)
	return &Index{
		Corpus:   c,
		Inverted: inv,
		Dict:     dict,
		Blocks:   blocks,
		opts: BuildOptions{
			Extractor:    meta.Extractor,
			ListFeatures: meta.ListFeatures,
			PhraseWidth:  meta.PhraseWidth,
			Workers:      workers,
			Compression:  true,
			Codec:        plist.BlockCodec(meta.Codec),
		},
		restricted:  meta.Restricted,
		workers:     resolved,
		pool:        topk.NewPool(resolved),
		lazyPD:      pdBytes,
		lazyFwd:     fwdBytes,
		closer:      snap,
		mappedBytes: snap.SizeBytes(),
	}, nil
}

// appendIDLists encodes a slice of strictly increasing uint32 ID lists:
// numLists, then per list its length and gap-encoded IDs (first absolute).
func appendIDLists(buf []byte, lists [][]corpus.DocID) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(lists)))
	for _, list := range lists {
		buf = binary.AppendUvarint(buf, uint64(len(list)))
		prev := corpus.DocID(0)
		for i, id := range list {
			if i == 0 {
				buf = binary.AppendUvarint(buf, uint64(id))
			} else {
				buf = binary.AppendUvarint(buf, uint64(id-prev))
			}
			prev = id
		}
	}
	return buf
}

// decodeIDLists parses appendIDLists output, rejecting IDs >= limit.
func decodeIDLists(data []byte, limit uint64) ([][]corpus.DocID, error) {
	pos := 0
	next := func() (uint64, error) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("core: truncated ID list at offset %d", pos)
		}
		pos += n
		return v, nil
	}
	numLists, err := next()
	if err != nil {
		return nil, err
	}
	if numLists > uint64(len(data)) {
		return nil, fmt.Errorf("core: implausible list count %d", numLists)
	}
	out := make([][]corpus.DocID, numLists)
	for i := range out {
		count, err := next()
		if err != nil {
			return nil, err
		}
		if count > uint64(len(data)) {
			return nil, fmt.Errorf("core: implausible list length %d", count)
		}
		if count == 0 {
			continue
		}
		list := make([]corpus.DocID, count)
		prev := uint64(0)
		for j := range list {
			gap, err := next()
			if err != nil {
				return nil, err
			}
			if j == 0 {
				prev = gap
			} else {
				prev += gap
			}
			if prev >= limit {
				return nil, fmt.Errorf("core: list %d entry %d: ID %d out of range %d", i, j, prev, limit)
			}
			list[j] = corpus.DocID(prev)
		}
		out[i] = list
	}
	if pos != len(data) {
		return nil, fmt.Errorf("core: %d trailing bytes after ID lists", len(data)-pos)
	}
	return out, nil
}

// phraseIDsAsDocIDs reinterprets a sorted PhraseID list for the shared
// uint32 ID-list codec.
func phraseIDsAsDocIDs(ids []phrasedict.PhraseID) []corpus.DocID {
	if ids == nil {
		return nil
	}
	out := make([]corpus.DocID, len(ids))
	for i, id := range ids {
		out[i] = corpus.DocID(id)
	}
	return out
}

// docIDsAsPhraseIDs is the inverse reinterpretation.
func docIDsAsPhraseIDs(ids []corpus.DocID) []phrasedict.PhraseID {
	if ids == nil {
		return nil
	}
	out := make([]phrasedict.PhraseID, len(ids))
	for i, id := range ids {
		out[i] = phrasedict.PhraseID(id)
	}
	return out
}

package core

import (
	"math"
	"testing"

	"phrasemine/internal/corpus"
	"phrasemine/internal/textproc"
	"phrasemine/internal/topk"
)

// deltaFixture builds a tiny hand-written corpus where probabilities can be
// verified by inspection. Phrase universe with MinDocFreq=2 over:
//
//	doc 0: alpha beta gamma
//	doc 1: alpha beta delta
//	doc 2: alpha gamma
//	doc 3: beta gamma
//
// yields unigrams alpha{0,1,2}, beta{0,1,3}, gamma{0,2,3}, and the bigram
// "alpha beta"{0,1}.
func deltaFixture(t *testing.T) *Index {
	t.Helper()
	c := corpus.New()
	add := func(tokens ...string) { c.Add(corpus.Document{Tokens: tokens}) }
	add("alpha", "beta", "gamma")
	add("alpha", "beta", "delta")
	add("alpha", "gamma")
	add("beta", "gamma")
	ix, err := Build(c, BuildOptions{
		Extractor: textproc.ExtractorOptions{MinWords: 1, MaxWords: 3, MinDocFreq: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestDeltaAddDocumentAdjustsProbabilities(t *testing.T) {
	ix := deltaFixture(t)
	d := mustDelta(ix)

	abID, ok := mustID(ix.Dict, "alpha beta")
	if !ok {
		t.Fatal("bigram missing from dictionary")
	}
	// Base: P(gamma | alpha beta) = |{0,1} ∩ {0,2,3}| / 2 = 1/2.
	if got := d.AdjustedProb("gamma", abID, 0.5); got != 0.5 {
		t.Fatalf("no-op delta changed probability: %v", got)
	}

	// Add a doc containing both "alpha beta" and "gamma":
	// df(alpha beta) 2->3, co(gamma, alpha beta) 1->2 => 2/3.
	d.AddDocument(corpus.Document{Tokens: []string{"alpha", "beta", "gamma"}})
	if d.Size() != 1 {
		t.Fatalf("Size = %d", d.Size())
	}
	got := d.AdjustedProb("gamma", abID, 0.5)
	if math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("adjusted P(gamma|alpha beta) = %v, want 2/3", got)
	}
}

func TestDeltaRemoveDocumentAdjustsProbabilities(t *testing.T) {
	ix := deltaFixture(t)
	d := mustDelta(ix)
	abID, _ := mustID(ix.Dict, "alpha beta")

	// Remove doc 0 (contains alpha beta and gamma):
	// df(alpha beta) 2->1, co(gamma, alpha beta) 1->0 => 0.
	if err := d.RemoveDocument(0); err != nil {
		t.Fatal(err)
	}
	if got := d.AdjustedProb("gamma", abID, 0.5); got != 0 {
		t.Fatalf("adjusted prob = %v, want 0", got)
	}
	// co(delta, alpha beta) stays 1 while df drops to 1 => 1.
	if got := d.AdjustedProb("delta", abID, 0.5); got != 1 {
		t.Fatalf("adjusted P(delta|alpha beta) = %v, want 1", got)
	}
}

func TestDeltaRemoveValidation(t *testing.T) {
	ix := deltaFixture(t)
	d := mustDelta(ix)
	if err := d.RemoveDocument(99); err == nil {
		t.Fatal("out-of-range removal should error")
	}
	if err := d.RemoveDocument(1); err != nil {
		t.Fatal(err)
	}
	if err := d.RemoveDocument(1); err == nil {
		t.Fatal("double removal should error")
	}
}

func TestDeltaQueriesMatchFlushedIndex(t *testing.T) {
	ix := deltaFixture(t)
	d := mustDelta(ix)
	// A few updates that only touch existing phrases.
	d.AddDocument(corpus.Document{Tokens: []string{"alpha", "beta", "gamma"}})
	d.AddDocument(corpus.Document{Tokens: []string{"beta", "gamma"}})
	if err := d.RemoveDocument(2); err != nil {
		t.Fatal(err)
	}

	flushed, err := d.Flush()
	if err != nil {
		t.Fatal(err)
	}

	// Compare phrase->score maps over the BASE dictionary's phrases with
	// a large K: phrase IDs differ between the two dictionaries (so
	// rank-order tie-breaks may differ) and the flushed index mints new
	// phrases the delta cannot know about, but every base phrase's
	// adjusted score must equal its recomputed score exactly.
	const bigK = 100
	for _, op := range []corpus.Operator{corpus.OpAND, corpus.OpOR} {
		q := corpus.NewQuery(op, "alpha", "beta")
		adjusted, _, err := d.QuerySMJ(mustSMJ(ix, 1.0), q, topk.SMJOptions{K: bigK})
		if err != nil {
			t.Fatal(err)
		}
		fresh, _, err := flushed.QuerySMJ(mustSMJ(flushed, 1.0), q, topk.SMJOptions{K: bigK})
		if err != nil {
			t.Fatal(err)
		}
		adjScores := scoreMap(t, ix, adjusted)
		freshScores := scoreMap(t, flushed, fresh)
		for text := range freshScores {
			if _, ok := mustID(ix.Dict, text); !ok {
				delete(freshScores, text) // phrase minted at flush
			}
		}
		if len(adjScores) != len(freshScores) {
			t.Fatalf("%v: candidate sets differ: %v vs %v", q, adjScores, freshScores)
		}
		for text, want := range freshScores {
			got, ok := adjScores[text]
			if !ok {
				t.Fatalf("%v: delta run missing %q", q, text)
			}
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("%v: score(%q) = %v, flushed %v", q, text, got, want)
			}
		}
	}
}

func scoreMap(t *testing.T, ix *Index, rs []topk.Result) map[string]float64 {
	t.Helper()
	out := make(map[string]float64, len(rs))
	for _, r := range rs {
		text, err := ix.PhraseText(r.Phrase)
		if err != nil {
			t.Fatal(err)
		}
		out[text] = r.Score
	}
	return out
}

func TestDeltaFlushIncorporatesNewDocuments(t *testing.T) {
	ix := deltaFixture(t)
	d := mustDelta(ix)
	// Add enough new docs to mint a brand-new phrase "zeta eta".
	for i := 0; i < 3; i++ {
		d.AddDocument(corpus.Document{Tokens: []string{"zeta", "eta"}})
	}
	flushed, err := d.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if flushed.Corpus.Len() != ix.Corpus.Len()+3 {
		t.Fatalf("flushed corpus has %d docs", flushed.Corpus.Len())
	}
	if _, ok := mustID(flushed.Dict, "zeta eta"); !ok {
		t.Fatal("flush did not mint the new phrase")
	}
	// The delta itself cannot see the new phrase (paper semantics).
	if _, ok := mustID(ix.Dict, "zeta eta"); ok {
		t.Fatal("base dictionary mutated")
	}
}

func TestDeltaProbClamping(t *testing.T) {
	ix := deltaFixture(t)
	d := mustDelta(ix)
	abID, _ := mustID(ix.Dict, "alpha beta")
	// Remove both docs containing the bigram: df -> 0.
	if err := d.RemoveDocument(0); err != nil {
		t.Fatal(err)
	}
	if err := d.RemoveDocument(1); err != nil {
		t.Fatal(err)
	}
	if got := d.AdjustedProb("alpha", abID, 1.0); got != 0 {
		t.Fatalf("df=0 should clamp to 0, got %v", got)
	}
}

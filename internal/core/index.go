// Package core assembles the paper's system end to end: it builds the
// phrase universe P and all indexes from a corpus (Section 4.2), answers
// top-k interesting-phrase queries with NRA or SMJ over memory- or
// disk-resident word-specific lists (Sections 4.3-4.4), hosts the exact
// and baseline algorithms for comparison, and maintains incremental
// updates through a delta index (Section 4.5.1).
package core

import (
	"fmt"
	"io"
	"math"
	"sync"

	"phrasemine/internal/baseline"
	"phrasemine/internal/corpus"
	"phrasemine/internal/diskio"
	"phrasemine/internal/parallel"
	"phrasemine/internal/phrasedict"
	"phrasemine/internal/plist"
	"phrasemine/internal/textproc"
	"phrasemine/internal/topk"
)

// BuildOptions configures index construction.
type BuildOptions struct {
	// Extractor controls the phrase universe P (n-gram lengths and the
	// minimum document frequency threshold of Section 2).
	Extractor textproc.ExtractorOptions
	// ListFeatures restricts word-specific list construction to the
	// given features. nil builds lists for the entire vocabulary — what
	// a deployed system would persist; experiment harnesses restrict to
	// the workload's features to keep build times proportionate.
	ListFeatures []string
	// PhraseWidth is the fixed phrase-list record width (the paper's
	// s = 50). Zero selects phrasedict.DefaultWidth.
	PhraseWidth int
	// Workers bounds index-construction concurrency: tokenization-derived
	// phrase extraction, inverted-index construction, forward-index
	// assembly and word-list building all fan out across this many
	// workers over contiguous document (or phrase/feature) shards and
	// merge deterministically, so the built index is identical at every
	// worker count. 1 forces the fully sequential path; 0 selects
	// GOMAXPROCS. The same bound caps query-time fan-out on the built
	// index (see Index.Pool).
	Workers int
	// Shards is the number of document shards the parallel extraction
	// scans over (0 defaults to 4*Workers). More shards smooth skew at
	// slightly higher merge cost.
	//
	// Precedence: Workers and Shards configure the extraction stage only
	// when Extractor.Workers is zero; an explicitly set Extractor.Workers
	// (with its own Shards) wins for that stage, and the remaining build
	// stages always follow Workers.
	Shards int
	// Compression selects the block-compressed physical layout for the
	// query-time structures: the score-ordered word lists are held as a
	// plist.BlockSet (delta/varint blocks with skip entries) instead of
	// raw []Entry slices, and snapshot loads keep inverted postings in
	// their compressed block form with lazy per-feature decoding. Queries
	// answer bit-identically to the uncompressed layout (locked by
	// internal/difftest's RunCompressedEquivalence); the trade is ~4-6x
	// less list memory for a per-block decode on the query path.
	Compression bool
	// Codec selects the per-block physical codec of the compressed layout
	// (word lists, SMJ lists, and snapshot posting blocks). The zero value
	// (plist.CodecAuto) picks packed or varint per block by encoded size;
	// plist.CodecVarint forces the delta/varint codec everywhere, which
	// differential tests use to build physically distinct twins.
	Codec plist.BlockCodec
}

// Index is the built system state over a static corpus D.
type Index struct {
	Corpus   *corpus.Corpus
	Inverted *corpus.Inverted
	// Dict is the fixed-width phrase list; position defines PhraseID.
	Dict *phrasedict.Dict
	// PhraseDocs[p] is docs(D, p), sorted.
	PhraseDocs [][]corpus.DocID
	// PhraseDF[p] = |docs(D, p)|.
	PhraseDF []uint32
	// Forward[d] holds the sorted phrase IDs present in document d (the
	// GM-style forward index, also used to build word lists).
	Forward [][]phrasedict.PhraseID
	// Lists maps each built feature to its full score-ordered list. It is
	// nil when the index runs compressed (see Blocks).
	Lists map[string]plist.ScoreList
	// Blocks holds the block-compressed score-ordered lists when the
	// index was built or loaded with Compression (or opened from a mapped
	// snapshot, where the set's data region aliases the mapping). Exactly
	// one of Lists and Blocks is the query source.
	Blocks *plist.BlockSet

	opts       BuildOptions
	restricted bool
	workers    int
	pool       *topk.Pool

	// Lazily decoded sections of a mapped snapshot: phrase-doc lists and
	// the forward index stay as raw encoded bytes until a consumer (GM,
	// Exact, delta updates, Save) needs them. lazyMu guards the one-shot
	// decode; closer unmaps the snapshot on Close.
	lazyMu      sync.Mutex
	lazyPD      []byte
	lazyFwd     []byte
	closer      io.Closer
	mappedBytes int64

	// scratchOnce lazily builds the query-scratch pool so every Index
	// construction path (Build, snapshot load, tests assembling literals)
	// gets one without extra wiring.
	scratchOnce sync.Once
	scratch     *topk.ScratchPool

	// baseMu guards the lazily built baseline caches so concurrent
	// queries can share one Index.
	baseMu sync.Mutex
	gm     *baseline.GM
	exact  *baseline.Exact
}

// Build constructs every index structure from the corpus. With
// opt.Workers != 1 every stage — phrase extraction, phrase-doc and forward
// index assembly, inverted-index construction and word-list building —
// fans out across document (or phrase/feature) shards and merges
// deterministically, so the built index is byte-identical to the
// Workers=1 build.
func Build(c *corpus.Corpus, opt BuildOptions) (*Index, error) {
	if c == nil || c.Len() == 0 {
		return nil, fmt.Errorf("core: empty corpus")
	}
	workers := parallel.Workers(opt.Workers)

	extractor := opt.Extractor
	if extractor.Workers == 0 {
		extractor.Workers = workers
		extractor.Shards = opt.Shards
	}
	tokens, err := c.TokenSlices()
	if err != nil {
		return nil, err
	}
	stats, err := textproc.Extract(tokens, extractor)
	if err != nil {
		return nil, fmt.Errorf("core: phrase extraction: %w", err)
	}
	if len(stats) == 0 {
		return nil, fmt.Errorf("core: no phrases cleared the document-frequency threshold")
	}
	return BuildFromStats(c, stats, opt)
}

// BuildFromStats constructs every index structure from a corpus and
// pre-extracted phrase statistics, skipping the extraction stage of Build.
// stats must be in the canonical textproc.Extract order — sorted by
// (word count, phrase) — because the slice position becomes the PhraseID,
// and each entry's Docs must be the sorted documents of this corpus that
// contain the phrase. The sharded engine uses this entry point to build
// segment indexes over externally filtered phrase universes; unlike Build,
// an empty stats slice is allowed (a segment may contain none of the
// global universe's phrases) and yields an index with an empty dictionary.
func BuildFromStats(c *corpus.Corpus, stats []textproc.PhraseStats, opt BuildOptions) (*Index, error) {
	if c == nil || c.Len() == 0 {
		return nil, fmt.Errorf("core: empty corpus")
	}
	workers := parallel.Workers(opt.Workers)

	phrases := make([]string, len(stats))
	for i, s := range stats {
		phrases[i] = s.Phrase
	}
	dict, err := phrasedict.Build(phrases, opt.PhraseWidth)
	if err != nil {
		return nil, fmt.Errorf("core: phrase dictionary: %w", err)
	}

	ix := &Index{
		Corpus:     c,
		Dict:       dict,
		PhraseDocs: make([][]corpus.DocID, len(stats)),
		PhraseDF:   make([]uint32, len(stats)),
		Forward:    make([][]phrasedict.PhraseID, c.Len()),
		opts:       opt,
		restricted: opt.ListFeatures != nil,
		workers:    workers,
		pool:       topk.NewPool(workers),
	}
	// Phrase-doc lists convert independently per phrase.
	parallel.ForEachShard(len(stats), 4*workers, workers, func(_ int, r parallel.Range) {
		for p := r.Lo; p < r.Hi; p++ {
			docs := make([]corpus.DocID, len(stats[p].Docs))
			for i, d := range stats[p].Docs {
				docs[i] = corpus.DocID(d)
			}
			ix.PhraseDocs[p] = docs
			ix.PhraseDF[p] = uint32(len(docs))
		}
	})
	ix.buildForward(workers)
	ix.Inverted, err = corpus.BuildInvertedParallel(c, workers)
	if err != nil {
		return nil, err
	}

	src := &plist.Source{
		Inverted:      ix.Inverted,
		Forward:       ix.Forward,
		PhraseDocFreq: ix.PhraseDF,
	}
	ix.Lists, err = plist.BuildListsParallel(src, opt.ListFeatures, workers)
	if err != nil {
		return nil, fmt.Errorf("core: word-specific lists: %w", err)
	}
	if opt.Compression {
		ix.Blocks, err = plist.BuildBlockSetCodec(ix.Lists, opt.Codec)
		if err != nil {
			return nil, fmt.Errorf("core: compressing word lists: %w", err)
		}
		ix.Lists = nil
	}
	return ix, nil
}

// Compressed reports whether the index queries block-compressed lists.
func (ix *Index) Compressed() bool { return ix.Blocks != nil }

// Mapped reports whether the index is backed by a memory-mapped snapshot.
func (ix *Index) Mapped() bool { return ix.closer != nil }

// Close releases resources held by a mapped index (the snapshot mapping).
// It must only be called once no query is in flight: open cursors read
// straight out of the mapping. Close on a heap-resident index is a no-op.
func (ix *Index) Close() error {
	if ix.closer == nil {
		return nil
	}
	c := ix.closer
	ix.closer = nil
	return c.Close()
}

// materializeDocs decodes the lazily held phrase-doc and forward sections
// of a mapped index. Built and heap-loaded indexes populate these fields
// eagerly, so this is a no-op for them.
func (ix *Index) materializeDocs() error {
	ix.lazyMu.Lock()
	defer ix.lazyMu.Unlock()
	if ix.lazyPD == nil && ix.lazyFwd == nil {
		return nil
	}
	phraseDocs, err := decodeIDLists(ix.lazyPD, uint64(ix.Corpus.Len()))
	if err != nil {
		return diskio.Corruptf("core: phrase-doc section: %v", err)
	}
	fwdAsDocs, err := decodeIDLists(ix.lazyFwd, uint64(ix.Dict.Len()))
	if err != nil {
		return diskio.Corruptf("core: forward section: %v", err)
	}
	if len(phraseDocs) != ix.Dict.Len() {
		return diskio.Corruptf("core: snapshot inconsistent: %d phrase-doc lists, dictionary has %d phrases", len(phraseDocs), ix.Dict.Len())
	}
	if len(fwdAsDocs) != ix.Corpus.Len() {
		return diskio.Corruptf("core: snapshot inconsistent: forward index covers %d docs, corpus has %d", len(fwdAsDocs), ix.Corpus.Len())
	}
	ix.PhraseDocs = phraseDocs
	ix.PhraseDF = make([]uint32, len(phraseDocs))
	for p, docs := range phraseDocs {
		ix.PhraseDF[p] = uint32(len(docs))
	}
	ix.Forward = make([][]phrasedict.PhraseID, len(fwdAsDocs))
	for d, ids := range fwdAsDocs {
		ix.Forward[d] = docIDsAsPhraseIDs(ids)
	}
	ix.lazyPD, ix.lazyFwd = nil, nil
	return nil
}

// buildForward inverts PhraseDocs into per-document forward lists. Phrase
// IDs ascend with p and each phrase's doc list is sorted, so sequential
// appending yields sorted per-document lists. The parallel path shards the
// phrase range: a counting pass sizes each document's list and computes
// per-shard write offsets, then shard workers write their (ascending)
// phrase IDs into disjoint reserved segments — the same sorted lists,
// without locks.
func (ix *Index) buildForward(workers int) {
	numDocs := len(ix.Forward)
	if workers <= 1 {
		for p, docs := range ix.PhraseDocs {
			for _, d := range docs {
				ix.Forward[d] = append(ix.Forward[d], phrasedict.PhraseID(p))
			}
		}
		return
	}
	ranges := parallel.Shards(len(ix.PhraseDocs), workers)
	counts := make([][]int32, len(ranges))
	parallel.ForEachOf(ranges, workers, func(s int, r parallel.Range) {
		cnt := make([]int32, numDocs)
		for p := r.Lo; p < r.Hi; p++ {
			for _, d := range ix.PhraseDocs[p] {
				cnt[d]++
			}
		}
		counts[s] = cnt
	})
	// Exclusive prefix sums per document turn shard counts into shard
	// write offsets; the running total sizes the final list.
	for d := 0; d < numDocs; d++ {
		total := int32(0)
		for s := range counts {
			counts[s][d], total = total, total+counts[s][d]
		}
		if total > 0 {
			ix.Forward[d] = make([]phrasedict.PhraseID, total)
		}
	}
	parallel.ForEachOf(ranges, workers, func(s int, r parallel.Range) {
		off := counts[s]
		for p := r.Lo; p < r.Hi; p++ {
			id := phrasedict.PhraseID(p)
			for _, d := range ix.PhraseDocs[p] {
				ix.Forward[d][off[d]] = id
				off[d]++
			}
		}
	})
}

// Workers reports the resolved construction/query concurrency bound.
func (ix *Index) Workers() int { return ix.workers }

// BuildOptions returns the options the index was built (or loaded) with,
// so harnesses can construct physically different twins of the same
// logical index (e.g. difftest's compressed-equivalence mode).
func (ix *Index) BuildOptions() BuildOptions { return ix.opts }

// Pool returns the index's bounded query-time worker pool (shared by every
// query on this index, so total fan-out stays bounded under concurrent
// callers).
func (ix *Index) Pool() *topk.Pool { return ix.pool }

// ScratchPool returns the index's query-scratch pool: reusable flat
// candidate tables and cursor buffers sized to the phrase-dictionary
// cardinality, handed out per query so steady-state serving allocates
// next to nothing on the hot path.
func (ix *Index) ScratchPool() *topk.ScratchPool {
	ix.scratchOnce.Do(func() {
		ix.scratch = topk.NewScratchPool(ix.Dict.Len())
	})
	return ix.scratch
}

// NumPhrases reports |P|.
func (ix *Index) NumPhrases() int { return ix.Dict.Len() }

// PhraseText resolves a phrase ID to its string.
func (ix *Index) PhraseText(id phrasedict.PhraseID) (string, error) {
	return ix.Dict.Phrase(id)
}

// featureList fetches the score-ordered list for a query feature. Missing
// features are empty lists when the build covered the whole vocabulary
// (the feature simply does not occur); under a restricted build they are
// an error, because silence would silently mis-answer the query.
func (ix *Index) featureList(f string) (plist.ScoreList, error) {
	l, ok := ix.Lists[f]
	if !ok && ix.restricted && ix.Inverted.Has(f) {
		return nil, fmt.Errorf("core: no list built for feature %q (restricted build)", f)
	}
	return l, nil
}

// featureBlockList is featureList for a compressed index: it returns the
// feature's block-compressed list view (empty when the feature never
// occurs), with the same restricted-build error semantics.
func (ix *Index) featureBlockList(f string) (plist.BlockList, error) {
	l, err := ix.Blocks.List(f)
	if err != nil {
		return plist.BlockList{}, err
	}
	if l.Len() == 0 && !ix.Blocks.Has(f) && ix.restricted && ix.Inverted.Has(f) {
		return plist.BlockList{}, fmt.Errorf("core: no list built for feature %q (restricted build)", f)
	}
	return l, nil
}

// ScoreLists returns the full score-ordered lists, decoding them from the
// compressed block set when the index runs compressed. The decode
// materializes every list, so this is for cold paths (SMJ index builds,
// disk-index serialization, diagnostics), not per-query use.
func (ix *Index) ScoreLists() (map[string]plist.ScoreList, error) {
	if ix.Blocks == nil {
		return ix.Lists, nil
	}
	return ix.Blocks.DecodeAllScoreLists()
}

// ListIndexSize reports the serialized size in bytes of the word-specific
// lists truncated to the given fraction, at the paper's 12-bytes-per-entry
// accounting — the Table 5 index-size analysis. Entry counts come from the
// block directory on a compressed index, so nothing is decoded.
func (ix *Index) ListIndexSize(fraction float64) int64 {
	var total int64
	if ix.Blocks != nil {
		for _, w := range ix.Blocks.Words() {
			n := ix.Blocks.NumEntries(w)
			total += plist.SizeBytes(plist.TruncatedLen(n, fraction))
		}
		return total
	}
	for _, l := range ix.Lists {
		total += plist.SizeBytes(len(l.Truncate(fraction)))
	}
	return total
}

// EstimateFullIndexSize extrapolates the full-vocabulary index size at a
// fraction from the average built list length, as the paper's Table 5 does
// ("assuming 12 bytes per entry" over the whole vocabulary).
func (ix *Index) EstimateFullIndexSize(fraction float64) int64 {
	var avg float64
	switch {
	case ix.Blocks != nil && ix.Blocks.NumWords() > 0:
		avg = float64(ix.Blocks.TotalEntries()) / float64(ix.Blocks.NumWords())
	case len(ix.Lists) > 0:
		avg = plist.AverageListLen(ix.Lists)
	default:
		return 0
	}
	avg *= math.Max(0, math.Min(1, fraction))
	return int64(avg * plist.EntrySize * float64(ix.Inverted.VocabSize()))
}

// WriteListIndex serializes the score-ordered lists (truncated to fraction)
// into the plist index-file format, for disk-resident operation.
func (ix *Index) WriteListIndex(w io.Writer, fraction float64) (int64, error) {
	lists, err := ix.ScoreLists()
	if err != nil {
		return 0, err
	}
	return plist.WriteIndex(w, plist.TruncateAll(lists, fraction))
}

// MemStats describes the physical footprint of the index's query-time list
// structures, the quantities surfaced by the server's /stats endpoint and
// expvar gauges so compression and mmap wins are observable in serving.
type MemStats struct {
	// ListEntries and ListBytes cover the score-ordered word lists:
	// compressed block bytes when compression is on, 16 bytes per in-heap
	// entry otherwise. BytesPerEntry = ListBytes / ListEntries.
	ListEntries   int     `json:"list_entries"`
	ListBytes     int64   `json:"list_bytes"`
	BytesPerEntry float64 `json:"bytes_per_entry"`
	// Postings and PostingBytes cover the feature inverted index, with
	// BytesPerPosting = PostingBytes / Postings.
	Postings        int     `json:"postings"`
	PostingBytes    int64   `json:"posting_bytes"`
	BytesPerPosting float64 `json:"bytes_per_posting"`
	// Compressed reports the block-compressed layout; Mapped reports a
	// mmap-backed snapshot, with MappedBytes the size of the shared
	// mapping (resident on demand, not all heap).
	Compressed  bool  `json:"compressed"`
	Mapped      bool  `json:"mapped"`
	MappedBytes int64 `json:"mapped_bytes,omitempty"`
	// PackedBlocks and PackedBytes report how much of the compressed
	// layout chose the bit-packed codec (word-list and posting blocks
	// combined); zero on varint-only or uncompressed indexes.
	PackedBlocks int   `json:"packed_blocks,omitempty"`
	PackedBytes  int64 `json:"packed_bytes,omitempty"`
}

// entryHeapSize is the in-memory footprint of one uncompressed list entry
// (a 4-byte ID padded + an 8-byte float in a 16-byte struct).
const entryHeapSize = 16

// MemStats reports the index's physical list footprint.
func (ix *Index) MemStats() MemStats {
	var s MemStats
	if ix.Blocks != nil {
		s.ListEntries = ix.Blocks.TotalEntries()
		s.ListBytes = ix.Blocks.SizeBytes()
		s.Compressed = true
		packed := ix.Blocks.Packed()
		s.PackedBlocks = packed.Blocks
		s.PackedBytes = packed.Bytes
	} else {
		s.ListEntries = plist.TotalEntries(ix.Lists)
		s.ListBytes = int64(s.ListEntries) * entryHeapSize
	}
	if s.ListEntries > 0 {
		s.BytesPerEntry = float64(s.ListBytes) / float64(s.ListEntries)
	}
	s.Postings, s.PostingBytes, _ = ix.Inverted.PostingStats()
	if s.Postings > 0 {
		s.BytesPerPosting = float64(s.PostingBytes) / float64(s.Postings)
	}
	pBlocks, pBytes := ix.Inverted.PackedPostingStats()
	s.PackedBlocks += pBlocks
	s.PackedBytes += pBytes
	s.Mapped = ix.Mapped()
	s.MappedBytes = ix.mappedBytes
	return s
}

// WritePhraseDict serializes the fixed-width phrase list.
func (ix *Index) WritePhraseDict(w io.Writer) (int64, error) {
	return ix.Dict.WriteTo(w)
}

// GM returns the (lazily built, cached) Gao & Michel forward-index
// baseline over this corpus. Lazy construction is mutex-guarded, so
// concurrent callers race only to build once — but the returned instance
// reuses scratch space and is not safe for concurrent use; Clone it per
// goroutine.
func (ix *Index) GM() (*baseline.GM, error) {
	if err := ix.materializeDocs(); err != nil {
		return nil, err
	}
	ix.baseMu.Lock()
	defer ix.baseMu.Unlock()
	if ix.gm == nil {
		g, err := baseline.NewGM(ix.Inverted, ix.Forward, ix.PhraseDF)
		if err != nil {
			return nil, err
		}
		ix.gm = g
	}
	return ix.gm, nil
}

// Exact returns the (lazily built, cached) exact ground-truth scorer. Lazy
// construction is mutex-guarded; the returned scorer allocates per query
// and is safe for concurrent use.
func (ix *Index) Exact() (*baseline.Exact, error) {
	if err := ix.materializeDocs(); err != nil {
		return nil, err
	}
	ix.baseMu.Lock()
	defer ix.baseMu.Unlock()
	if ix.exact == nil {
		e, err := baseline.NewExact(ix.Inverted, ix.PhraseDocs)
		if err != nil {
			return nil, err
		}
		ix.exact = e
	}
	return ix.exact, nil
}

// Simitsis builds the phrase-list baseline with the given pool multiple.
func (ix *Index) Simitsis(poolMultiple int) (*baseline.Simitsis, error) {
	if err := ix.materializeDocs(); err != nil {
		return nil, err
	}
	return baseline.NewSimitsis(ix.Inverted, ix.PhraseDocs, poolMultiple)
}

// GMCompressed builds the forward-index baseline with the prefix
// compression optimization (Section 2's Bedathur-style storage reduction).
// Results are identical to GM; the forward index is smaller and queries pay
// a chain-expansion cost.
func (ix *Index) GMCompressed() (*baseline.GMCompressed, error) {
	if err := ix.materializeDocs(); err != nil {
		return nil, err
	}
	return baseline.NewGMCompressed(ix.Inverted, ix.Forward, ix.PhraseDF, ix.Dict)
}

// PhraseDocFreqByText reports |docs(D, p)| for a phrase given by its
// canonical text, zero (with no error) when the phrase is not in the
// dictionary — the base document frequency the live-tail gather merge
// combines with tail counts. On a mapped index the first call
// materializes the lazily held document sections; a corrupt section
// surfaces as an error wrapping diskio.ErrCorruptSnapshot.
func (ix *Index) PhraseDocFreqByText(phrase string) (uint32, error) {
	id, ok, err := ix.Dict.ID(phrase)
	if err != nil || !ok {
		return 0, err
	}
	if err := ix.materializeDocs(); err != nil {
		return 0, err
	}
	return ix.PhraseDF[id], nil
}

package core

import (
	"bytes"
	"reflect"
	"testing"

	"phrasemine/internal/corpus"
	"phrasemine/internal/phrasedict"
	"phrasemine/internal/synth"
	"phrasemine/internal/textproc"
	"phrasemine/internal/topk"
)

func buildTestIndex(t *testing.T) *Index {
	t.Helper()
	c, err := synth.ReutersLike().Scale(0.01).Generate()
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(c, BuildOptions{
		Extractor: textproc.ExtractorOptions{MinDocFreq: 3},
		Workers:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func snapshotRoundTrip(t *testing.T, ix *Index, workers int) *Index {
	t.Helper()
	var buf bytes.Buffer
	n, err := ix.WriteSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteSnapshot reported %d bytes, wrote %d", n, buf.Len())
	}
	loaded, err := LoadSnapshot(bytes.NewReader(buf.Bytes()), workers)
	if err != nil {
		t.Fatal(err)
	}
	return loaded
}

func TestSnapshotRoundTripStructures(t *testing.T) {
	ix := buildTestIndex(t)
	loaded := snapshotRoundTrip(t, ix, 1)

	if loaded.Corpus.Len() != ix.Corpus.Len() {
		t.Fatalf("corpus %d docs, want %d", loaded.Corpus.Len(), ix.Corpus.Len())
	}
	if loaded.NumPhrases() != ix.NumPhrases() {
		t.Fatalf("|P| = %d, want %d", loaded.NumPhrases(), ix.NumPhrases())
	}
	if loaded.Inverted.VocabSize() != ix.Inverted.VocabSize() {
		t.Fatalf("|W| = %d, want %d", loaded.Inverted.VocabSize(), ix.Inverted.VocabSize())
	}
	if !reflect.DeepEqual(loaded.PhraseDF, ix.PhraseDF) {
		t.Fatal("PhraseDF mismatch")
	}
	if !reflect.DeepEqual(loaded.PhraseDocs, ix.PhraseDocs) {
		t.Fatal("PhraseDocs mismatch")
	}
	if !reflect.DeepEqual(loaded.Forward, ix.Forward) {
		t.Fatal("Forward mismatch")
	}
	if len(loaded.Lists) != len(ix.Lists) {
		t.Fatalf("%d lists, want %d", len(loaded.Lists), len(ix.Lists))
	}
	for f, l := range ix.Lists {
		if !reflect.DeepEqual(loaded.Lists[f], l) {
			t.Fatalf("list %q mismatch", f)
		}
	}
	for p := 0; p < ix.NumPhrases(); p++ {
		want := ix.Dict.MustPhrase(phrasedict.PhraseID(p))
		got := loaded.Dict.MustPhrase(phrasedict.PhraseID(p))
		if got != want {
			t.Fatalf("phrase %d = %q, want %q", p, got, want)
		}
	}
}

func TestSnapshotRoundTripQueries(t *testing.T) {
	ix := buildTestIndex(t)
	loaded := snapshotRoundTrip(t, ix, 0)

	features := ix.Inverted.TopFeaturesByDocFreq(6)
	if len(features) < 2 {
		t.Fatal("not enough features")
	}
	queries := []corpus.Query{
		corpus.NewQuery(corpus.OpOR, features[0]),
		corpus.NewQuery(corpus.OpOR, features[0], features[1]),
		corpus.NewQuery(corpus.OpAND, features[0], features[1]),
		corpus.NewQuery(corpus.OpAND, features[2], features[3], features[4]),
	}
	for _, q := range queries {
		a, _, err := ix.QueryNRA(q, topk.NRAOptions{K: 5})
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := loaded.QueryNRA(q, topk.NRAOptions{K: 5})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("NRA results diverge for %v:\noriginal %v\nloaded  %v", q, a, b)
		}
		sa, _, err := ix.QuerySMJ(mustSMJ(ix, 1.0), q, topk.SMJOptions{K: 5})
		if err != nil {
			t.Fatal(err)
		}
		sb, _, err := loaded.QuerySMJ(mustSMJ(loaded, 1.0), q, topk.SMJOptions{K: 5})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sa, sb) {
			t.Fatalf("SMJ results diverge for %v", q)
		}
	}
}

func TestSnapshotBytesDeterministic(t *testing.T) {
	ix := buildTestIndex(t)
	var a, b bytes.Buffer
	if _, err := ix.WriteSnapshot(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.WriteSnapshot(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("snapshot bytes are not deterministic")
	}
}

func TestSnapshotLoadedIndexSupportsDeltaAndFlush(t *testing.T) {
	ix := buildTestIndex(t)
	loaded := snapshotRoundTrip(t, ix, 1)
	d := mustDelta(loaded)
	d.AddDocument(loaded.Corpus.MustDoc(0))
	if d.Size() != 1 {
		t.Fatalf("delta size = %d", d.Size())
	}
	fresh, err := d.Flush()
	if err != nil {
		t.Fatalf("flush on loaded index: %v", err)
	}
	if fresh.Corpus.Len() != loaded.Corpus.Len()+1 {
		t.Fatalf("flushed corpus has %d docs, want %d", fresh.Corpus.Len(), loaded.Corpus.Len()+1)
	}
}

func TestSnapshotRejectsMismatchedSections(t *testing.T) {
	ix := buildTestIndex(t)
	var buf bytes.Buffer
	if _, err := ix.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt one payload byte: the container checksum must catch it.
	data := append([]byte(nil), buf.Bytes()...)
	data[len(data)/2] ^= 0xFF
	if _, err := LoadSnapshot(bytes.NewReader(data), 1); err == nil {
		t.Fatal("corrupted snapshot loaded")
	}
}

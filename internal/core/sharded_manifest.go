package core

// Sharded persistence: every segment serializes through the existing v2
// snapshot container (WriteSnapshot), and a diskio.Manifest ties them
// together. Opening maps each segment zero-copy (OpenSnapshotFile) and
// reassembles the global phrase table by merging the segment dictionaries
// — the same (word count, phrase) order the build uses, so reopened
// engines answer bit-identically.

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"slices"
	"strings"

	"phrasemine/internal/diskio"
	"phrasemine/internal/diskio/faultfs"
	"phrasemine/internal/parallel"
	"phrasemine/internal/phrasedict"
	"phrasemine/internal/textproc"
	"phrasemine/internal/topk"
)

// segmentFileName names segment i's generation-g snapshot inside a
// manifest directory. Generation 0 keeps the historical plain name, so
// fresh builds into an empty directory produce the familiar layout.
func segmentFileName(i, gen int) string {
	if gen == 0 {
		return fmt.Sprintf("segment-%03d.snap", i)
	}
	return fmt.Sprintf("segment-%03d.g%d.snap", i, gen)
}

// segmentFilePattern matches any generation's segment file names.
var segmentFilePattern = regexp.MustCompile(`^segment-\d{3}(\.g\d+)?\.snap$`)

// SaveSegments writes one v2 snapshot per segment into dir (creating it)
// and returns the manifest describing them. The caller (the public Miner)
// attaches its configuration and writes the manifest file. SaveSegments
// refuses while document updates are pending, so persisted segments always
// capture a consistent, fully indexed state.
func (sx *ShardedIndex) SaveSegments(dir string) (diskio.Manifest, error) {
	return sx.SaveSegmentsFS(faultfs.OS{}, dir)
}

// SaveSegmentsFS is SaveSegments over an explicit filesystem (the
// fault-injection seam). Segment files are written under names no
// existing file uses (a generation suffix), so even a failure halfway
// through the final rename pass cannot damage the previous generation:
// the old manifest keeps referencing the old, untouched files. Call
// CleanupSegments after the new manifest is durably written to drop the
// superseded generation.
func (sx *ShardedIndex) SaveSegmentsFS(fsys faultfs.FS, dir string) (diskio.Manifest, error) {
	if sx.broken != nil {
		return diskio.Manifest{}, fmt.Errorf("core: engine is inconsistent after a failed flush (%w); refusing to persist it", sx.broken)
	}
	if n := sx.PendingUpdates(); n > 0 {
		return diskio.Manifest{}, fmt.Errorf("core: %d document updates pending; call Flush before saving", n)
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return diskio.Manifest{}, err
	}
	// Pick the first generation whose names collide with nothing on disk.
	existing := map[string]bool{}
	if names, err := fsys.ReadDir(dir); err == nil {
		for _, n := range names {
			existing[n] = true
		}
	}
	gen := 0
	for ; ; gen++ {
		collision := false
		for i := range sx.segs {
			if existing[segmentFileName(i, gen)] {
				collision = true
				break
			}
		}
		if !collision {
			break
		}
	}
	man := diskio.Manifest{
		Magic:           diskio.ManifestMagic,
		Version:         diskio.ManifestVersion,
		SnapshotVersion: SnapshotVersion,
		Segments:        make([]diskio.SegmentRef, len(sx.segs)),
	}
	// Write every segment to a temporary name first and rename only after
	// all writes succeed, so a crash or write error mid-save never
	// truncates a previously persisted good segment in place.
	errs := make([]error, len(sx.segs))
	sx.fanOut(len(sx.segs), func(i int) {
		name := segmentFileName(i, gen)
		f, err := fsys.OpenFile(filepath.Join(dir, name+".tmp"), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
		if err != nil {
			errs[i] = err
			return
		}
		if _, err := sx.segs[i].ix.WriteSnapshot(f); err != nil {
			f.Close()
			errs[i] = err
			return
		}
		// Flush the segment to stable storage before the rename below makes
		// it visible: a power cut after rename must not leave a manifest
		// pointing at a segment whose bytes never hit the disk.
		if err := f.Sync(); err != nil {
			f.Close()
			errs[i] = err
			return
		}
		if err := f.Close(); err != nil {
			errs[i] = err
			return
		}
		man.Segments[i] = diskio.SegmentRef{File: name, Docs: sx.segs[i].c.Len()}
	})
	if err := firstError(errs); err != nil {
		for i := range sx.segs {
			fsys.Remove(filepath.Join(dir, segmentFileName(i, gen)+".tmp"))
		}
		return diskio.Manifest{}, err
	}
	for i := range sx.segs {
		name := segmentFileName(i, gen)
		if err := fsys.Rename(filepath.Join(dir, name+".tmp"), filepath.Join(dir, name)); err != nil {
			return diskio.Manifest{}, err
		}
	}
	// Persist the renames themselves (the directory entries) so the segment
	// files survive a crash immediately after SaveSegments returns.
	if err := fsys.SyncDir(dir); err != nil {
		return diskio.Manifest{}, err
	}
	return man, nil
}

// CleanupSegments removes segment files (and stray temp files) in dir
// that the durably-written manifest does not reference: the superseded
// generation. Failures are ignored — stale files cost disk space, not
// correctness, and the next save skips their names.
func CleanupSegments(fsys faultfs.FS, dir string, man diskio.Manifest) {
	live := map[string]bool{diskio.ManifestFileName: true}
	for _, s := range man.Segments {
		live[s.File] = true
	}
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return
	}
	for _, n := range names {
		if live[n] {
			continue
		}
		if segmentFilePattern.MatchString(n) || strings.HasSuffix(n, ".tmp") {
			fsys.Remove(filepath.Join(dir, n))
		}
	}
}

// OpenSharded assembles a sharded engine from a manifest whose segment
// snapshots live under dir. Each segment opens zero-copy via mmap; the
// phrase-doc sections materialize eagerly (the gather needs per-segment
// document frequencies), while corpus documents and forward lists stay
// lazy until a GM query or document endpoint touches them. Per-segment
// tallies are not persisted: the first Flush on a reopened engine
// re-derives them by re-extracting each segment once.
func OpenSharded(dir string, man diskio.Manifest, workers int) (*ShardedIndex, error) {
	if err := man.Validate(); err != nil {
		return nil, err
	}
	if man.SnapshotVersion != SnapshotVersion {
		return nil, fmt.Errorf("core: manifest references snapshot version %d, this build reads %d", man.SnapshotVersion, SnapshotVersion)
	}
	resolved := parallel.Workers(workers)
	sx := &ShardedIndex{
		workers:  resolved,
		pool:     topk.NewPool(resolved),
		smjCache: map[float64][]*smjSlot{},
	}
	sx.segs = make([]*segment, len(man.Segments))
	errs := make([]error, len(man.Segments))
	inner := innerWorkers(resolved, len(man.Segments))
	parallel.ForEach(len(man.Segments), resolved, func(i int) {
		ix, err := OpenSnapshotFile(filepath.Join(dir, man.Segments[i].File), inner)
		if err != nil {
			errs[i] = fmt.Errorf("core: segment %d: %w", i, err)
			return
		}
		if ix.Corpus.Len() != man.Segments[i].Docs {
			ix.Close()
			errs[i] = fmt.Errorf("core: segment %d holds %d docs, manifest says %d", i, ix.Corpus.Len(), man.Segments[i].Docs)
			return
		}
		// The gather divides by per-segment phrase document frequencies on
		// every query, so materialize the phrase-doc section now.
		if err := ix.materializeDocs(); err != nil {
			ix.Close()
			errs[i] = fmt.Errorf("core: segment %d: %w", i, err)
			return
		}
		sx.segs[i] = &segment{ix: ix, c: ix.Corpus}
	})
	if err := firstError(errs); err != nil {
		for _, seg := range sx.segs {
			if seg != nil {
				seg.ix.Close()
			}
		}
		return nil, err
	}
	sx.opts = sx.segs[0].ix.BuildOptions()
	sx.opts.Workers = workers
	if err := sx.mergeSegmentDicts(); err != nil {
		sx.Close()
		return nil, err
	}
	sx.assemble()
	return sx, nil
}

// firstError returns the first non-nil error of a slice.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// mergeSegmentDicts rebuilds the global dictionary, document frequencies
// and per-segment ID maps from the segment dictionaries alone. Every
// universe phrase appears in the dictionary of each segment containing it
// (segments index exactly the universe phrases present in them), so the
// union of segment dictionaries is the universe and summed per-segment
// frequencies are the exact global frequencies. Each segment dictionary is
// already in (word count, phrase) order, so a k-way merge reproduces the
// build-time global order — and therefore the monolithic PhraseIDs.
func (sx *ShardedIndex) mergeSegmentDicts() error {
	type entry struct {
		words  int
		phrase string
		df     uint32
	}
	total := map[string]*entry{}
	for _, seg := range sx.segs {
		d := seg.ix.Dict
		for i := 0; i < d.Len(); i++ {
			p := d.MustPhrase(phrasedict.PhraseID(i))
			e := total[p]
			if e == nil {
				e = &entry{words: textproc.PhraseLen(p), phrase: p}
				total[p] = e
			}
			e.df += seg.ix.PhraseDF[i]
		}
	}
	merged := make([]*entry, 0, len(total))
	for _, e := range total {
		merged = append(merged, e)
	}
	// Sort by the canonical dictionary order.
	slices.SortFunc(merged, func(a, b *entry) int {
		if a.words != b.words {
			return a.words - b.words
		}
		return strings.Compare(a.phrase, b.phrase)
	})
	phrases := make([]string, len(merged))
	df := make([]uint32, len(merged))
	for i, e := range merged {
		phrases[i] = e.phrase
		df[i] = e.df
	}
	dict, err := phrasedict.Build(phrases, sx.opts.PhraseWidth)
	if err != nil {
		return fmt.Errorf("core: merging segment dictionaries: %w", err)
	}
	sx.dict = dict
	sx.globalDF = df
	for si, seg := range sx.segs {
		l2g := make([]phrasedict.PhraseID, seg.ix.Dict.Len())
		for i := 0; i < seg.ix.Dict.Len(); i++ {
			g, ok, err := dict.ID(seg.ix.Dict.MustPhrase(phrasedict.PhraseID(i)))
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("core: segment %d phrase missing from merged dictionary", si)
			}
			l2g[i] = g
		}
		seg.localToGlobal = l2g
	}
	return nil
}

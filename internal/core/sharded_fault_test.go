package core

// Fault injection for the multi-file segment save: a failure at any point
// (ENOSPC mid-write, failed fsync, failed rename partway through the
// rename pass) must leave the previously persisted generation — manifest
// plus every segment it references — intact and openable. The
// generation-suffixed naming makes this structural: a rewrite never opens
// a file the live manifest points at.

import (
	"errors"
	"path/filepath"
	"testing"

	"phrasemine/internal/diskio"
	"phrasemine/internal/diskio/faultfs"
	"phrasemine/internal/textproc"
)

func TestSaveSegmentsFaultsKeepPreviousGeneration(t *testing.T) {
	c := smokeCorpus(11, 120)
	opt := BuildOptions{Extractor: textproc.ExtractorOptions{MinDocFreq: 3, MaxWords: 3, DropAllStopwordPhrases: true}}
	sx, err := BuildSharded(c, opt, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer sx.Close()

	dir := t.TempDir()
	manPath := filepath.Join(dir, diskio.ManifestFileName)
	man, err := sx.SaveSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := diskio.WriteManifest(manPath, man); err != nil {
		t.Fatal(err)
	}

	reopen := func(label string) {
		t.Helper()
		gotMan, gotDir, err := diskio.ReadManifest(dir)
		if err != nil {
			t.Fatalf("%s: manifest unreadable: %v", label, err)
		}
		re, err := OpenSharded(gotDir, gotMan, 2)
		if err != nil {
			t.Fatalf("%s: previous generation does not open: %v", label, err)
		}
		if re.NumDocs() != c.Len() {
			t.Fatalf("%s: reopened %d docs, want %d", label, re.NumDocs(), c.Len())
		}
		re.Close()
	}
	reopen("baseline")

	errDisk := errors.New("ENOSPC")
	cases := []struct {
		name string
		op   faultfs.Op
		nth  int
	}{
		{name: "failed segment create", op: faultfs.OpCreate, nth: 1},
		{name: "enospc mid segment write", op: faultfs.OpWrite, nth: 3},
		{name: "failed segment fsync", op: faultfs.OpSync, nth: 2},
		{name: "failed first rename", op: faultfs.OpRename, nth: 1},
		{name: "failed second rename", op: faultfs.OpRename, nth: 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ffs := faultfs.NewFault(faultfs.OS{})
			ffs.FailNth(tc.op, tc.nth, errDisk)
			if _, err := sx.SaveSegmentsFS(ffs, dir); !errors.Is(err, errDisk) {
				t.Fatalf("want injected error, got %v", err)
			}
			reopen(tc.name)
		})
	}

	// A clean retry lands on fresh names, and after the manifest commits
	// the superseded generation is garbage-collected.
	man2, err := sx.SaveSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man2.Segments[0].File == man.Segments[0].File {
		t.Fatalf("rewrite reused live segment name %q", man2.Segments[0].File)
	}
	if err := diskio.WriteManifest(manPath, man2); err != nil {
		t.Fatal(err)
	}
	CleanupSegments(faultfs.OS{}, dir, man2)
	reopen("post-cleanup")
	names, err := faultfs.OS{}.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	live := map[string]bool{diskio.ManifestFileName: true}
	for _, s := range man2.Segments {
		live[s.File] = true
	}
	for _, n := range names {
		if !live[n] {
			t.Fatalf("cleanup left %q behind (have %v)", n, names)
		}
	}
}

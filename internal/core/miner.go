package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"phrasemine/internal/corpus"
	"phrasemine/internal/diskio"
	"phrasemine/internal/phrasedict"
	"phrasemine/internal/plist"
	"phrasemine/internal/topk"
)

// MinedPhrase is a result with its phrase text resolved, ready for display.
type MinedPhrase struct {
	ID     phrasedict.PhraseID
	Phrase string
	// Score is the algorithm-native aggregate (sum of probabilities for
	// OR, sum of log-probabilities for AND).
	Score float64
	// Estimate is the score converted to the interestingness scale of
	// Eq. 1 (see topk.EstimatedInterestingness).
	Estimate float64
}

// Resolve converts raw topk results into displayable phrases, attaching
// interestingness estimates computed against the query's sub-collection.
// Only |D'| is needed for the estimates, so the sub-collection is counted
// (SelectCount), not materialized.
func (ix *Index) Resolve(results []topk.Result, q corpus.Query) ([]MinedPhrase, error) {
	dPrimeSize, err := ix.Inverted.SelectCount(q)
	if err != nil {
		return nil, err
	}
	out := make([]MinedPhrase, len(results))
	for i, r := range results {
		text, err := ix.Dict.Phrase(r.Phrase)
		if err != nil {
			return nil, err
		}
		out[i] = MinedPhrase{
			ID:     r.Phrase,
			Phrase: text,
			Score:  r.Score,
			Estimate: topk.EstimatedInterestingness(
				r.Score, q.Op, dPrimeSize, ix.Corpus.Len()),
		}
	}
	return out, nil
}

// QueryNRA answers a query with the NRA algorithm over in-memory
// score-ordered lists. Partial-list operation is selected through
// opt.Fraction (a query-time decision for NRA). Candidate tables and
// cursors come from the index's scratch pool, so repeated queries run
// allocation-free apart from the returned results. On a compressed index
// the cursors decode blocks on demand — straight out of the mapped region
// when the snapshot was opened with OpenSnapshotFile — into pooled scratch
// buffers; results are bit-identical to the uncompressed path.
func (ix *Index) QueryNRA(q corpus.Query, opt topk.NRAOptions) ([]topk.Result, topk.NRAStats, error) {
	if err := q.Validate(); err != nil {
		return nil, topk.NRAStats{}, err
	}
	opt.Op = q.Op
	pool := ix.ScratchPool()
	s := pool.Get()
	defer pool.Put(s)
	if ix.Blocks != nil {
		cursors, blk := s.BlockCursors(len(q.Features))
		for i, f := range q.Features {
			l, err := ix.featureBlockList(f)
			if err != nil {
				return nil, topk.NRAStats{}, err
			}
			blk[i].Reset(l)
			cursors[i] = &blk[i]
		}
		return topk.NRAScratch(cursors, opt, s)
	}
	cursors, mem := s.MemCursors(len(q.Features))
	for i, f := range q.Features {
		l, err := ix.featureList(f)
		if err != nil {
			return nil, topk.NRAStats{}, err
		}
		mem[i].Reset(l)
		cursors[i] = &mem[i]
	}
	return topk.NRAScratch(cursors, opt, s)
}

// QueryNRAShared is QueryNRA for shared-scan batch execution: block
// decodes go through sc so that concurrent queries over the same
// feature lists decode each block once. It requires a compressed index
// (Blocks != nil) and a non-nil cache; callers fall back to QueryNRA
// otherwise. Results are bit-identical to QueryNRA.
func (ix *Index) QueryNRAShared(q corpus.Query, opt topk.NRAOptions, sc *plist.ShareCache) ([]topk.Result, topk.NRAStats, error) {
	if ix.Blocks == nil || sc == nil {
		return ix.QueryNRA(q, opt)
	}
	if err := q.Validate(); err != nil {
		return nil, topk.NRAStats{}, err
	}
	opt.Op = q.Op
	pool := ix.ScratchPool()
	s := pool.Get()
	defer pool.Put(s)
	cursors, blk := s.BlockCursors(len(q.Features))
	for i, f := range q.Features {
		l, err := ix.featureBlockList(f)
		if err != nil {
			return nil, topk.NRAStats{}, err
		}
		blk[i].ResetShared(l, "n\x00"+f, sc)
		cursors[i] = &blk[i]
	}
	return topk.NRAScratch(cursors, opt, s)
}

// QueryNRADisk answers a query with NRA over a disk-resident list index
// opened from a plist.Reader (typically backed by the diskio simulator).
func (ix *Index) QueryNRADisk(r *plist.Reader, q corpus.Query, opt topk.NRAOptions) ([]topk.Result, topk.NRAStats, error) {
	if err := q.Validate(); err != nil {
		return nil, topk.NRAStats{}, err
	}
	if r.Ordering() != plist.OrderScore {
		return nil, topk.NRAStats{}, fmt.Errorf("core: NRA requires a score-ordered index, got %v", r.Ordering())
	}
	opt.Op = q.Op
	pool := ix.ScratchPool()
	s := pool.Get()
	defer pool.Put(s)
	cursors := s.Cursors(len(q.Features))
	for i, f := range q.Features {
		if !r.Has(f) && ix.restricted && ix.Inverted.Has(f) {
			return nil, topk.NRAStats{}, fmt.Errorf("core: disk index has no list for %q", f)
		}
		cursors[i] = r.Cursor(f)
	}
	return topk.NRAScratch(cursors, opt, s)
}

// OpenSimDiskIndex serializes the index's lists (truncated to fraction)
// onto the simulated disk under the given file name and opens a reader
// over it. The returned reader's cursor reads are charged to the
// simulator's cost model.
func (ix *Index) OpenSimDiskIndex(disk *diskio.Disk, name string, fraction float64) (*plist.Reader, error) {
	var buf writerBuffer
	if _, err := ix.WriteListIndex(&buf, fraction); err != nil {
		return nil, err
	}
	if err := disk.CreateFile(name, buf.data); err != nil {
		return nil, err
	}
	f, err := disk.File(name)
	if err != nil {
		return nil, err
	}
	return plist.OpenReader(f)
}

// writerBuffer is a minimal io.Writer that keeps ownership of its bytes
// (bytes.Buffer would force a copy to hand the slice to diskio).
type writerBuffer struct{ data []byte }

func (w *writerBuffer) Write(p []byte) (int, error) {
	w.data = append(w.data, p...)
	return len(p), nil
}

// SMJIndex holds phrase-ID-ordered lists truncated to a fixed fraction —
// the construction-time partial lists of Section 4.4.1 ("once the
// ID-ordered lists have been constructed using a pre-specified fraction,
// we cannot, at run-time, decide to work with a larger or smaller one").
// Exactly one of Lists (raw slices) and Blocks (block-compressed, for
// compressed indexes) is populated.
type SMJIndex struct {
	Fraction float64
	Lists    map[string]plist.IDList
	Blocks   *plist.BlockSet
}

// BuildSMJ materializes an SMJ index at the given fraction from the full
// score-ordered lists, fanning the per-feature copy+sort across the
// index's worker bound. On a compressed index the score lists are decoded
// once here (a construction-time cost, like the sort itself) and the
// resulting ID-ordered lists are re-compressed, so the SMJ index inherits
// the compact layout.
func (ix *Index) BuildSMJ(fraction float64) (*SMJIndex, error) {
	if ix.Blocks != nil {
		// A block set that passed open-time validation only fails decode
		// on corruption; queries against the SMJ index would surface the
		// same corruption, so classify it here.
		lists, err := ix.Blocks.DecodeAllScoreLists()
		if err != nil {
			return nil, diskio.Corruptf("core: decoding compressed lists for SMJ build: %v", err)
		}
		idLists := plist.ToIDOrderedAllParallel(plist.TruncateAll(lists, fraction), ix.workers)
		blocks, err := plist.BuildIDBlockSetCodec(idLists, ix.opts.Codec)
		if err != nil {
			return nil, diskio.Corruptf("core: compressing SMJ lists: %v", err)
		}
		return &SMJIndex{Fraction: fraction, Blocks: blocks}, nil
	}
	return &SMJIndex{
		Fraction: fraction,
		Lists:    plist.ToIDOrderedAllParallel(plist.TruncateAll(ix.Lists, fraction), ix.workers),
	}, nil
}

// featureScoreCursor returns a fresh cursor over the feature's full
// score-ordered list from whichever backing store the index uses — raw
// slices or compressed blocks. It allocates; the scratch-pooled paths in
// QueryNRA are for the no-delta hot path, while delta queries (which wrap
// cursors in adjustment layers anyway) use this.
func (ix *Index) featureScoreCursor(f string) (plist.Cursor, error) {
	if ix.Blocks != nil {
		l, err := ix.featureBlockList(f)
		if err != nil {
			return nil, err
		}
		return plist.NewBlockCursor(l), nil
	}
	l, err := ix.featureList(f)
	if err != nil {
		return nil, err
	}
	return plist.NewMemCursor(l), nil
}

// smjFeatureCursor is featureScoreCursor for a prepared SMJ index.
func (ix *Index) smjFeatureCursor(s *SMJIndex, f string) (plist.Cursor, error) {
	if s.Blocks != nil {
		l, err := s.Blocks.List(f)
		if err != nil {
			return nil, err
		}
		if !s.Blocks.Has(f) && ix.restricted && ix.Inverted.Has(f) {
			return nil, fmt.Errorf("core: SMJ index has no list for %q", f)
		}
		return plist.NewBlockCursor(l), nil
	}
	l, ok := s.Lists[f]
	if !ok && ix.restricted && ix.Inverted.Has(f) {
		return nil, fmt.Errorf("core: SMJ index has no list for %q", f)
	}
	return plist.NewMemCursor(l), nil
}

// fanOut runs fn(i) for i in [0, n) through the index's bounded query
// pool, or inline when the index was built single-threaded (or n is
// trivial). Used for per-keyword list preparation on multi-keyword
// queries.
func (ix *Index) fanOut(n int, fn func(i int)) {
	if ix.pool == nil || ix.workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	ix.pool.RunN(n, fn)
}

// SizeBytes reports the serialized size of the SMJ index's lists at the
// paper's 12-bytes-per-entry accounting.
func (s *SMJIndex) SizeBytes() int64 {
	if s.Blocks != nil {
		return plist.SizeBytes(s.Blocks.TotalEntries())
	}
	return plist.SizeBytes(plist.TotalEntries(s.Lists))
}

// QuerySMJ answers a query with the SMJ algorithm over a prepared
// ID-ordered index. Merger state and cursors come from the index's scratch
// pool, so repeated queries run allocation-free apart from the returned
// results.
func (ix *Index) QuerySMJ(s *SMJIndex, q corpus.Query, opt topk.SMJOptions) ([]topk.Result, topk.SMJStats, error) {
	if err := q.Validate(); err != nil {
		return nil, topk.SMJStats{}, err
	}
	opt.Op = q.Op
	pool := ix.ScratchPool()
	scratch := pool.Get()
	defer pool.Put(scratch)
	if s.Blocks != nil {
		cursors, blk := scratch.BlockCursors(len(q.Features))
		for i, f := range q.Features {
			l, err := s.Blocks.List(f)
			if err != nil {
				return nil, topk.SMJStats{}, err
			}
			if !s.Blocks.Has(f) && ix.restricted && ix.Inverted.Has(f) {
				return nil, topk.SMJStats{}, fmt.Errorf("core: SMJ index has no list for %q", f)
			}
			blk[i].Reset(l)
			cursors[i] = &blk[i]
		}
		return topk.SMJScratch(cursors, opt, scratch)
	}
	cursors, mem := scratch.MemCursors(len(q.Features))
	for i, f := range q.Features {
		l, ok := s.Lists[f]
		if !ok && ix.restricted && ix.Inverted.Has(f) {
			return nil, topk.SMJStats{}, fmt.Errorf("core: SMJ index has no list for %q", f)
		}
		mem[i].Reset(l)
		cursors[i] = &mem[i]
	}
	return topk.SMJScratch(cursors, opt, scratch)
}

// smjShareKey builds the share-cache key for an SMJ feature list. The
// fraction is part of the key because SMJ indexes at different fractions
// hold different physical lists for the same feature.
func smjShareKey(fraction float64, f string) string {
	var fb [8]byte
	binary.LittleEndian.PutUint64(fb[:], math.Float64bits(fraction))
	return "s\x00" + string(fb[:]) + "\x00" + f
}

// QuerySMJShared is QuerySMJ for shared-scan batch execution, decoding
// blocks through sc. It requires a block-compressed SMJ index and a
// non-nil cache; callers fall back to QuerySMJ otherwise. Results are
// bit-identical to QuerySMJ.
func (ix *Index) QuerySMJShared(s *SMJIndex, q corpus.Query, opt topk.SMJOptions, sc *plist.ShareCache) ([]topk.Result, topk.SMJStats, error) {
	if s.Blocks == nil || sc == nil {
		return ix.QuerySMJ(s, q, opt)
	}
	if err := q.Validate(); err != nil {
		return nil, topk.SMJStats{}, err
	}
	opt.Op = q.Op
	pool := ix.ScratchPool()
	scratch := pool.Get()
	defer pool.Put(scratch)
	cursors, blk := scratch.BlockCursors(len(q.Features))
	for i, f := range q.Features {
		l, err := s.Blocks.List(f)
		if err != nil {
			return nil, topk.SMJStats{}, err
		}
		if !s.Blocks.Has(f) && ix.restricted && ix.Inverted.Has(f) {
			return nil, topk.SMJStats{}, fmt.Errorf("core: SMJ index has no list for %q", f)
		}
		blk[i].ResetShared(l, smjShareKey(s.Fraction, f), sc)
		cursors[i] = &blk[i]
	}
	return topk.SMJScratch(cursors, opt, scratch)
}

package core

import (
	"fmt"
	"math"
	"sort"

	"phrasemine/internal/corpus"
	"phrasemine/internal/phrasedict"
	"phrasemine/internal/plist"
	"phrasemine/internal/textproc"
	"phrasemine/internal/topk"
)

// Delta implements the incremental-operation scheme of Section 4.5.1: a
// separate inverted index over inserted and deleted documents, keyed by
// features and phrases, that supplies conditional-probability corrections
// when NRA or SMJ takes a phrase into consideration. Periodically the delta
// is flushed and the list indexes recomputed offline (Flush).
//
// Known phrases only: documents added after the build contribute counts to
// phrases already in P; genuinely new phrases enter the system at the next
// Flush, exactly as the paper prescribes.
type Delta struct {
	ix      *Index
	added   []corpus.Document
	removed map[corpus.DocID]bool
	// dDF[p] is the pending change to |docs(p)|.
	dDF map[phrasedict.PhraseID]int
	// dCo[{f,p}] is the pending change to |docs(f) ∩ docs(p)|.
	dCo map[featurePhrase]int
}

type featurePhrase struct {
	feature string
	phrase  phrasedict.PhraseID
}

// NewDelta starts an empty delta over the index. On a mapped index this
// materializes the phrase-doc and forward sections (delta corrections need
// them); a corrupt mapped snapshot surfaces here as an error rather than
// admitting updates it cannot score.
func (ix *Index) NewDelta() (*Delta, error) {
	if err := ix.materializeDocs(); err != nil {
		return nil, err
	}
	return &Delta{
		ix:      ix,
		removed: make(map[corpus.DocID]bool),
		dDF:     make(map[phrasedict.PhraseID]int),
		dCo:     make(map[featurePhrase]int),
	}, nil
}

// Size reports the number of pending document updates (inserts + deletes),
// the quantity a deployment would threshold to trigger Flush.
func (d *Delta) Size() int {
	return len(d.added) + len(d.removed)
}

// docPhrases finds the distinct dictionary phrases present in a token
// stream by scanning its n-grams against the phrase dictionary.
func (d *Delta) docPhrases(tokens []string) ([]phrasedict.PhraseID, error) {
	maxWords := d.ix.opts.Extractor.MaxWords
	if maxWords <= 0 {
		maxWords = 6
	}
	seen := make(map[phrasedict.PhraseID]struct{})
	for n := 1; n <= maxWords; n++ {
		for s := 0; s+n <= len(tokens); s++ {
			window := tokens[s : s+n]
			if crossesBreak(window) {
				continue
			}
			id, ok, err := d.ix.Dict.ID(textproc.JoinPhrase(window))
			if err != nil {
				return nil, err
			}
			if ok {
				seen[id] = struct{}{}
			}
		}
	}
	out := make([]phrasedict.PhraseID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	return out, nil
}

func crossesBreak(window []string) bool {
	for _, t := range window {
		if t == textproc.SentenceBreak {
			return true
		}
	}
	return false
}

// docFeatures lists the distinct features (words + facets) of a document.
func docFeatures(doc corpus.Document) map[string]struct{} {
	out := make(map[string]struct{}, len(doc.Tokens))
	for _, t := range doc.Tokens {
		if t != textproc.SentenceBreak {
			out[t] = struct{}{}
		}
	}
	for name, value := range doc.Facets {
		out[corpus.FacetFeature(name, value)] = struct{}{}
	}
	return out
}

// apply folds one document's counts into the delta with the given sign.
func (d *Delta) apply(doc corpus.Document, phrases []phrasedict.PhraseID, sign int) {
	features := docFeatures(doc)
	for _, p := range phrases {
		d.dDF[p] += sign
		for f := range features {
			d.dCo[featurePhrase{f, p}] += sign
		}
	}
}

// AddDocument registers an inserted document.
func (d *Delta) AddDocument(doc corpus.Document) error {
	phrases, err := d.docPhrases(doc.Tokens)
	if err != nil {
		return err
	}
	d.added = append(d.added, doc)
	d.apply(doc, phrases, +1)
	return nil
}

// RemoveDocument registers the deletion of a base-corpus document.
func (d *Delta) RemoveDocument(id corpus.DocID) error {
	if int(id) >= d.ix.Corpus.Len() {
		return fmt.Errorf("core: document %d out of range", id)
	}
	if d.removed[id] {
		return fmt.Errorf("core: document %d already removed", id)
	}
	doc, err := d.ix.Corpus.Doc(id)
	if err != nil {
		return err
	}
	d.removed[id] = true
	d.apply(doc, d.ix.Forward[id], -1)
	return nil
}

// AdjustedProb corrects a stored P(feature|phrase) with the delta counts:
//
//	P'(f|p) = (co + Δco) / (df + Δdf)
//
// The stored co-occurrence count is recovered from the stored probability
// and the base document frequency (prob = co/df exactly, both integers at
// build time).
func (d *Delta) AdjustedProb(feature string, p phrasedict.PhraseID, stored float64) float64 {
	df := int(d.ix.PhraseDF[p])
	co := int(math.Round(stored * float64(df)))
	df += d.dDF[p]
	co += d.dCo[featurePhrase{feature, p}]
	if df <= 0 || co <= 0 {
		return 0
	}
	if co > df {
		co = df
	}
	return float64(co) / float64(df)
}

// extras lists delta-minted entries for a feature: phrases whose base
// co-occurrence with the feature was zero (hence absent from the stored
// list, which omits zero probabilities) but whose pending updates give them
// a positive adjusted probability. This realizes the paper's "additional
// query ... on the separate index" for pairs the stored lists cannot serve.
func (d *Delta) extras(feature string) ([]plist.Entry, error) {
	var out []plist.Entry
	featureDocs, err := d.ix.Inverted.Docs(feature)
	if err != nil {
		return nil, err
	}
	for key, dco := range d.dCo {
		if key.feature != feature || dco <= 0 {
			continue
		}
		if corpus.IntersectCount2(featureDocs, d.ix.PhraseDocs[key.phrase]) > 0 {
			continue // pair exists in the stored list; adjusted in place
		}
		if prob := d.AdjustedProb(feature, key.phrase, 0); prob > 0 {
			out = append(out, plist.Entry{Phrase: key.phrase, Prob: prob})
		}
	}
	return out, nil
}

// adjustedCursor rewrites cursor probabilities through the delta. Entries
// whose adjusted probability drops to zero are skipped (a zero-probability
// pair is by definition absent from the list). Score order may be mildly
// violated after adjustment, which is exactly why the paper notes that
// "such probability adjustments make NRA's pruning phase approximate";
// SMJ is unaffected because it never relies on score order.
type adjustedCursor struct {
	inner   plist.Cursor
	delta   *Delta
	feature string
}

func (c *adjustedCursor) Len() int { return c.inner.Len() }
func (c *adjustedCursor) Pos() int { return c.inner.Pos() }
func (c *adjustedCursor) Next() (plist.Entry, bool) {
	for {
		e, ok := c.inner.Next()
		if !ok {
			return plist.Entry{}, false
		}
		adj := c.delta.AdjustedProb(c.feature, e.Phrase, e.Prob)
		if adj == 0 {
			continue
		}
		e.Prob = adj
		return e, true
	}
}
func (c *adjustedCursor) Err() error { return c.inner.Err() }

// chainCursor yields the inner cursor's entries followed by a fixed tail —
// how delta-minted extras reach NRA (score order is already approximate
// under adjustment, so appending keeps the implementation lazy).
type chainCursor struct {
	inner plist.Cursor
	tail  []plist.Entry
	tPos  int
}

func (c *chainCursor) Len() int { return c.inner.Len() + len(c.tail) }
func (c *chainCursor) Pos() int { return c.inner.Pos() + c.tPos }
func (c *chainCursor) Next() (plist.Entry, bool) {
	if e, ok := c.inner.Next(); ok {
		return e, true
	}
	if c.tPos < len(c.tail) {
		e := c.tail[c.tPos]
		c.tPos++
		return e, true
	}
	return plist.Entry{}, false
}
func (c *chainCursor) Err() error { return c.inner.Err() }

// mergeByIDCursor interleaves the inner (ID-ordered) cursor with ID-sorted
// extras, preserving the strict ID ordering SMJ relies on.
type mergeByIDCursor struct {
	inner   plist.Cursor
	extras  []plist.Entry
	ePos    int
	pending *plist.Entry // one-entry lookahead pulled from inner
}

func (c *mergeByIDCursor) Len() int { return c.inner.Len() + len(c.extras) }
func (c *mergeByIDCursor) Pos() int { return c.inner.Pos() + c.ePos }
func (c *mergeByIDCursor) Next() (plist.Entry, bool) {
	if c.pending == nil {
		if e, ok := c.inner.Next(); ok {
			c.pending = &e
		}
	}
	haveExtra := c.ePos < len(c.extras)
	switch {
	case c.pending != nil && (!haveExtra || c.pending.Phrase <= c.extras[c.ePos].Phrase):
		e := *c.pending
		c.pending = nil
		return e, true
	case haveExtra:
		e := c.extras[c.ePos]
		c.ePos++
		return e, true
	default:
		return plist.Entry{}, false
	}
}
func (c *mergeByIDCursor) Err() error { return c.inner.Err() }

// QueryNRA answers a query with NRA over delta-adjusted lists. Per-keyword
// cursor preparation (the extras scan over pending updates) fans out
// through the index's bounded query pool; the delta is only read, so
// concurrent preparation is safe.
func (d *Delta) QueryNRA(q corpus.Query, opt topk.NRAOptions) ([]topk.Result, topk.NRAStats, error) {
	if err := q.Validate(); err != nil {
		return nil, topk.NRAStats{}, err
	}
	opt.Op = q.Op
	pool := d.ix.ScratchPool()
	s := pool.Get()
	defer pool.Put(s)
	cursors := s.Cursors(len(q.Features))
	errs := make([]error, len(q.Features))
	d.ix.fanOut(len(q.Features), func(i int) {
		f := q.Features[i]
		inner, err := d.ix.featureScoreCursor(f)
		if err != nil {
			errs[i] = err
			return
		}
		extras, err := d.extras(f)
		if err != nil {
			errs[i] = err
			return
		}
		sort.Slice(extras, func(a, b int) bool {
			if extras[a].Prob != extras[b].Prob {
				return extras[a].Prob > extras[b].Prob
			}
			return extras[a].Phrase < extras[b].Phrase
		})
		cursors[i] = &chainCursor{
			inner: &adjustedCursor{inner: inner, delta: d, feature: f},
			tail:  extras,
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, topk.NRAStats{}, err
		}
	}
	return topk.NRAScratch(cursors, opt, s)
}

// QuerySMJ answers a query with SMJ over delta-adjusted ID-ordered lists.
func (d *Delta) QuerySMJ(s *SMJIndex, q corpus.Query, opt topk.SMJOptions) ([]topk.Result, topk.SMJStats, error) {
	if err := q.Validate(); err != nil {
		return nil, topk.SMJStats{}, err
	}
	opt.Op = q.Op
	pool := d.ix.ScratchPool()
	scratch := pool.Get()
	defer pool.Put(scratch)
	cursors := scratch.Cursors(len(q.Features))
	errs := make([]error, len(q.Features))
	d.ix.fanOut(len(q.Features), func(i int) {
		f := q.Features[i]
		inner, err := d.ix.smjFeatureCursor(s, f)
		if err != nil {
			errs[i] = err
			return
		}
		extras, err := d.extras(f)
		if err != nil {
			errs[i] = err
			return
		}
		sort.Slice(extras, func(a, b int) bool { return extras[a].Phrase < extras[b].Phrase })
		cursors[i] = &mergeByIDCursor{
			inner:  &adjustedCursor{inner: inner, delta: d, feature: f},
			extras: extras,
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, topk.SMJStats{}, err
		}
	}
	return topk.SMJScratch(cursors, opt, scratch)
}

// Flush rebuilds the index offline over the updated corpus (base documents
// minus removals, plus additions) and returns it. The delta itself is left
// untouched; callers switch to the new index and discard the delta.
func (d *Delta) Flush() (*Index, error) {
	merged := corpus.New()
	for i := 0; i < d.ix.Corpus.Len(); i++ {
		id := corpus.DocID(i)
		if d.removed[id] {
			continue
		}
		doc, err := d.ix.Corpus.Doc(id)
		if err != nil {
			return nil, err
		}
		if _, err := merged.Add(doc); err != nil {
			return nil, err
		}
	}
	for _, doc := range d.added {
		if _, err := merged.Add(doc); err != nil {
			return nil, err
		}
	}
	return Build(merged, d.ix.opts)
}

package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"phrasemine/internal/corpus"
	"phrasemine/internal/textproc"
	"phrasemine/internal/topk"
)

func smokeCorpus(seed int64, docs int) *corpus.Corpus {
	rng := rand.New(rand.NewSource(seed))
	words := []string{"trade", "reserves", "economic", "minister", "bank", "rate",
		"database", "query", "optimization", "systems", "index", "join",
		"weather", "storm", "coast", "report", "week", "statement"}
	c := corpus.New()
	for i := 0; i < docs; i++ {
		n := 6 + rng.Intn(10)
		toks := make([]string, n)
		for j := range toks {
			toks[j] = words[rng.Intn(len(words))]
		}
		c.Add(corpus.Document{Tokens: toks})
	}
	return c
}

func TestShardedSmoke(t *testing.T) {
	c := smokeCorpus(7, 300)
	opt := BuildOptions{Extractor: textproc.ExtractorOptions{MinDocFreq: 3, MaxWords: 3, DropAllStopwordPhrases: true}}
	mono, err := Build(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	smj := mustSMJ(mono, 1.0)
	for _, nseg := range []int{1, 2, 4, 7} {
		sx, err := BuildSharded(c, opt, nseg)
		if err != nil {
			t.Fatal(err)
		}
		if sx.NumPhrases() != mono.NumPhrases() {
			t.Fatalf("N=%d: |P| %d vs %d", nseg, sx.NumPhrases(), mono.NumPhrases())
		}
		if sx.VocabSize() != mono.Inverted.VocabSize() {
			t.Fatalf("N=%d: |W| %d vs %d", nseg, sx.VocabSize(), mono.Inverted.VocabSize())
		}
		queries := [][]string{{"trade"}, {"trade", "reserves"}, {"query", "optimization", "systems"}, {"bank", "rate"}, {"storm", "coast", "weather"}}
		for _, op := range []corpus.Operator{corpus.OpAND, corpus.OpOR} {
			for _, kws := range queries {
				q := corpus.NewQuery(op, kws...)
				want, _, err := mono.QuerySMJ(smj, q, topk.SMJOptions{K: 5})
				if err != nil {
					t.Fatal(err)
				}
				got, err := sx.QuerySMJ(context.Background(), q, 5, 1.0)
				if err != nil {
					t.Fatal(err)
				}
				if !bitEq(want, got) {
					t.Fatalf("N=%d %v SMJ: want %v got %v", nseg, q, want, got)
				}
				gotN, err := sx.QueryNRA(context.Background(), q, 5, 1.0)
				if err != nil {
					t.Fatal(err)
				}
				if !bitEq(want, gotN) {
					t.Fatalf("N=%d %v NRA: want %v got %v", nseg, q, want, gotN)
				}
				gm, err := mono.GM()
				if err != nil {
					t.Fatal(err)
				}
				wg, _, err := gm.TopK(q, 5)
				if err != nil {
					t.Fatal(err)
				}
				gg, err := sx.QueryGM(context.Background(), q, 5)
				if err != nil {
					t.Fatal(err)
				}
				if len(wg) != len(gg) {
					t.Fatalf("N=%d %v GM: len %d vs %d", nseg, q, len(wg), len(gg))
				}
				for i := range wg {
					if wg[i].Phrase != gg[i].Phrase || math.Float64bits(wg[i].Score) != math.Float64bits(gg[i].Score) {
						t.Fatalf("N=%d %v GM row %d: %+v vs %+v", nseg, q, i, wg[i], gg[i])
					}
				}
			}
		}
		t.Logf("N=%d ok |P|=%d", nseg, sx.NumPhrases())
	}
}

func bitEq(a, b []topk.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Phrase != b[i].Phrase || math.Float64bits(a[i].Score) != math.Float64bits(b[i].Score) {
			return false
		}
	}
	return true
}

func TestShardedFlushSmoke(t *testing.T) {
	c := smokeCorpus(11, 200)
	opt := BuildOptions{Extractor: textproc.ExtractorOptions{MinDocFreq: 3, MaxWords: 3, DropAllStopwordPhrases: true}}
	sx, err := BuildSharded(c, opt, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Add docs, remove a couple, flush, compare against a monolith over the
	// same logical corpus.
	extra := smokeCorpus(99, 20)
	for i := 0; i < extra.Len(); i++ {
		sx.AddDocument(extra.MustDoc(corpus.DocID(i)))
	}
	if err := sx.RemoveDocument(5); err != nil {
		t.Fatal(err)
	}
	if err := sx.RemoveDocument(150); err != nil {
		t.Fatal(err)
	}
	if got := sx.PendingUpdates(); got != 22 {
		t.Fatalf("pending %d", got)
	}
	if err := sx.Flush(); err != nil {
		t.Fatal(err)
	}
	if sx.PendingUpdates() != 0 {
		t.Fatal("pending after flush")
	}

	ref := corpus.New()
	for i := 0; i < c.Len(); i++ {
		if i == 5 || i == 150 {
			continue
		}
		ref.Add(c.MustDoc(corpus.DocID(i)))
	}
	// Additions land in the write segment, i.e. at the end of the global
	// doc space... but removals shift earlier segments. Reconstruct the
	// expected order: per segment in order, minus removals, adds at the end.
	// Our ref above keeps original order minus removed, then adds appended.
	for i := 0; i < extra.Len(); i++ {
		ref.Add(extra.MustDoc(corpus.DocID(i)))
	}
	if sx.NumDocs() != ref.Len() {
		t.Fatalf("docs %d vs %d", sx.NumDocs(), ref.Len())
	}
	mono, err := Build(ref, opt)
	if err != nil {
		t.Fatal(err)
	}
	if sx.NumPhrases() != mono.NumPhrases() {
		t.Fatalf("|P| %d vs %d after flush", sx.NumPhrases(), mono.NumPhrases())
	}
	smj := mustSMJ(mono, 1.0)
	for _, op := range []corpus.Operator{corpus.OpAND, corpus.OpOR} {
		for _, kws := range [][]string{{"trade"}, {"trade", "reserves"}, {"query", "optimization", "systems"}} {
			q := corpus.NewQuery(op, kws...)
			want, _, err := mono.QuerySMJ(smj, q, topk.SMJOptions{K: 5})
			if err != nil {
				t.Fatal(err)
			}
			got, err := sx.QueryNRA(context.Background(), q, 5, 1.0)
			if err != nil {
				t.Fatal(err)
			}
			if !bitEq(want, got) {
				t.Fatalf("%v after flush: want %v got %v", q, want, got)
			}
		}
	}
}

func TestShardedManifestSmoke(t *testing.T) {
	c := smokeCorpus(7, 300)
	opt := BuildOptions{Extractor: textproc.ExtractorOptions{MinDocFreq: 3, MaxWords: 3, DropAllStopwordPhrases: true}}
	sx, err := BuildSharded(c, opt, 4)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	man, err := sx.SaveSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	opened, err := OpenSharded(dir, man, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer opened.Close()
	if opened.NumPhrases() != sx.NumPhrases() || opened.NumDocs() != sx.NumDocs() {
		t.Fatalf("shape: %d/%d vs %d/%d", opened.NumPhrases(), opened.NumDocs(), sx.NumPhrases(), sx.NumDocs())
	}
	for _, op := range []corpus.Operator{corpus.OpAND, corpus.OpOR} {
		for _, kws := range [][]string{{"trade", "reserves"}, {"query", "optimization", "systems"}} {
			q := corpus.NewQuery(op, kws...)
			want, err := sx.QueryNRA(context.Background(), q, 5, 1.0)
			if err != nil {
				t.Fatal(err)
			}
			got, err := opened.QueryNRA(context.Background(), q, 5, 1.0)
			if err != nil {
				t.Fatal(err)
			}
			if !bitEq(want, got) {
				t.Fatalf("%v reopened: %v vs %v", q, want, got)
			}
			wg, err := sx.QueryGM(context.Background(), q, 5)
			if err != nil {
				t.Fatal(err)
			}
			gg, err := opened.QueryGM(context.Background(), q, 5)
			if err != nil {
				t.Fatal(err)
			}
			if !bitEq(wg, gg) {
				t.Fatalf("%v GM reopened diverges", q)
			}
		}
	}
	// Flush on a reopened engine re-derives tallies and stays exact.
	opened.AddDocument(corpus.Document{Tokens: []string{"trade", "reserves", "trade", "reserves"}})
	if err := opened.Flush(); err != nil {
		t.Fatal(err)
	}
	if opened.NumDocs() != sx.NumDocs()+1 {
		t.Fatalf("docs after reopened flush: %d", opened.NumDocs())
	}
}

// TestShardedFlushRefusalLeavesStateIntact locks the atomicity of a
// refused Flush: when a removal set would empty a segment, the refusal
// must leave the engine exactly as it was — same documents, same
// answers, updates still pending — rather than having already rewritten
// earlier segments' corpora (which would make a later retry resolve the
// retained removal IDs against shifted documents).
func TestShardedFlushRefusalLeavesStateIntact(t *testing.T) {
	c := smokeCorpus(3, 60)
	opt := BuildOptions{Extractor: textproc.ExtractorOptions{MinDocFreq: 3, MaxWords: 3, DropAllStopwordPhrases: true}}
	sx, err := BuildSharded(c, opt, 3)
	if err != nil {
		t.Fatal(err)
	}
	q := corpus.NewQuery(corpus.OpOR, "trade", "reserves")
	before, err := sx.QueryNRA(context.Background(), q, 5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// Remove one doc from segment 0 AND every doc of segment 1, so the
	// flush refuses after segment 0's corpus would already have been
	// staged.
	if err := sx.RemoveDocument(0); err != nil {
		t.Fatal(err)
	}
	lo, hi := sx.remap.Global(1, 0), sx.remap.Global(2, 0)
	for id := lo; id < hi; id++ {
		if err := sx.RemoveDocument(id); err != nil {
			t.Fatal(err)
		}
	}
	pending := sx.PendingUpdates()
	if err := sx.Flush(); err == nil {
		t.Fatal("flush emptying a segment did not refuse")
	}
	if sx.NumDocs() != c.Len() {
		t.Fatalf("refused flush changed NumDocs: %d vs %d", sx.NumDocs(), c.Len())
	}
	if got := sx.PendingUpdates(); got != pending {
		t.Fatalf("refused flush changed pending updates: %d vs %d", got, pending)
	}
	after, err := sx.QueryNRA(context.Background(), q, 5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if !bitEq(before, after) {
		t.Fatalf("refused flush changed answers: %v vs %v", before, after)
	}
	// The segment corpora themselves must be untouched: doc 0 still
	// resolves to the original first document.
	if sx.segs[0].c.Len() != sx.remap.SegmentLen(0) {
		t.Fatalf("segment 0 corpus mutated by refused flush")
	}
	// DiscardPendingUpdates is the recovery path: it unblocks Flush
	// without ever having applied the poisoned removal set.
	sx.DiscardPendingUpdates()
	if sx.PendingUpdates() != 0 {
		t.Fatal("DiscardPendingUpdates left pending updates")
	}
	if err := sx.Flush(); err != nil {
		t.Fatalf("flush after discard: %v", err)
	}
	recovered, err := sx.QueryNRA(context.Background(), q, 5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if !bitEq(before, recovered) {
		t.Fatalf("recovered engine diverges: %v vs %v", before, recovered)
	}
}

package core

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"phrasemine/internal/corpus"
	"phrasemine/internal/synth"
	"phrasemine/internal/textproc"
	"phrasemine/internal/topk"
)

// writeSnapshotFile persists ix to a temp snapshot file.
func writeSnapshotFile(t *testing.T, ix *Index) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "index.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.WriteSnapshot(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// queryWorkload harvests a few single- and multi-feature queries from the
// index's own vocabulary.
func queryWorkload(ix *Index) []corpus.Query {
	feats := ix.Inverted.TopFeaturesByDocFreq(6)
	var qs []corpus.Query
	for _, op := range []corpus.Operator{corpus.OpAND, corpus.OpOR} {
		for _, f := range feats {
			qs = append(qs, corpus.NewQuery(op, f))
		}
		if len(feats) >= 2 {
			qs = append(qs, corpus.NewQuery(op, feats[0], feats[1]))
		}
		if len(feats) >= 4 {
			qs = append(qs, corpus.NewQuery(op, feats[1], feats[2], feats[3]))
		}
	}
	return qs
}

func sameResults(t *testing.T, label string, a, b []topk.Result) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d results vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i].Phrase != b[i].Phrase ||
			math.Float64bits(a[i].Score) != math.Float64bits(b[i].Score) ||
			math.Float64bits(a[i].Lower) != math.Float64bits(b[i].Lower) ||
			math.Float64bits(a[i].Upper) != math.Float64bits(b[i].Upper) {
			t.Fatalf("%s: result %d differs: %+v vs %+v", label, i, a[i], b[i])
		}
	}
}

func TestOpenSnapshotFileAnswersIdentically(t *testing.T) {
	ix := buildTestIndex(t)
	path := writeSnapshotFile(t, ix)

	mapped, err := OpenSnapshotFile(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()

	if !mapped.Compressed() || !mapped.Mapped() {
		t.Fatalf("mapped index: Compressed=%v Mapped=%v", mapped.Compressed(), mapped.Mapped())
	}
	if mapped.Corpus.Len() != ix.Corpus.Len() || mapped.NumPhrases() != ix.NumPhrases() {
		t.Fatalf("headers: %d docs |P|=%d, want %d/%d",
			mapped.Corpus.Len(), mapped.NumPhrases(), ix.Corpus.Len(), ix.NumPhrases())
	}

	smjBase := mustSMJ(ix, 0.5)
	smjMapped := mustSMJ(mapped, 0.5)
	for _, q := range queryWorkload(ix) {
		for _, frac := range []float64{1.0, 0.4} {
			a, _, err := ix.QueryNRA(q, topk.NRAOptions{K: 5, Fraction: frac})
			if err != nil {
				t.Fatal(err)
			}
			b, _, err := mapped.QueryNRA(q, topk.NRAOptions{K: 5, Fraction: frac})
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, q.String()+"/NRA", a, b)
		}
		sa, _, err := ix.QuerySMJ(smjBase, q, topk.SMJOptions{K: 5})
		if err != nil {
			t.Fatal(err)
		}
		sb, _, err := mapped.QuerySMJ(smjMapped, q, topk.SMJOptions{K: 5})
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, q.String()+"/SMJ", sa, sb)

		// Resolve exercises the lazy inverted index (SelectCount) and the
		// zero-copy dictionary.
		ra, err := ix.Resolve(a5(ix, q, t), q)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := mapped.Resolve(a5(mapped, q, t), q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("%v: Resolve diverges", q)
		}
	}

	// GM materializes the lazy phrase-doc/forward sections.
	q := queryWorkload(ix)[0]
	ga, err := ix.GM()
	if err != nil {
		t.Fatal(err)
	}
	gb, err := mapped.GM()
	if err != nil {
		t.Fatal(err)
	}
	wa, _, err := ga.TopK(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	wb, _, err := gb.TopK(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wa, wb) {
		t.Fatal("GM diverges on mapped index")
	}

	stats := mapped.MemStats()
	if !stats.Compressed || !stats.Mapped || stats.MappedBytes == 0 {
		t.Fatalf("MemStats = %+v", stats)
	}
	if stats.BytesPerPosting >= 2 {
		t.Fatalf("bytes/posting %.2f did not drop at least 2x vs raw 4-byte postings", stats.BytesPerPosting)
	}
	if stats.BytesPerEntry*2 > 12 {
		t.Fatalf("bytes/entry %.2f did not drop at least 2x vs raw 12-byte entries", stats.BytesPerEntry)
	}
}

// a5 runs a K=5 NRA query, failing the test on error.
func a5(ix *Index, q corpus.Query, t *testing.T) []topk.Result {
	t.Helper()
	r, _, err := ix.QueryNRA(q, topk.NRAOptions{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestCompressedBuildAnswersIdentically(t *testing.T) {
	c, err := synth.ReutersLike().Scale(0.01).Generate()
	if err != nil {
		t.Fatal(err)
	}
	opts := BuildOptions{
		Extractor: textproc.ExtractorOptions{MinDocFreq: 3},
		Workers:   2,
	}
	plain, err := Build(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Compression = true
	packed, err := Build(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !packed.Compressed() || packed.Lists != nil {
		t.Fatal("compressed build kept raw lists")
	}
	smjA := mustSMJ(plain, 0.3)
	smjB := mustSMJ(packed, 0.3)
	for _, q := range queryWorkload(plain) {
		a, _, err := plain.QueryNRA(q, topk.NRAOptions{K: 5})
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := packed.QueryNRA(q, topk.NRAOptions{K: 5})
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, q.String()+"/NRA", a, b)
		sa, _, err := plain.QuerySMJ(smjA, q, topk.SMJOptions{K: 5})
		if err != nil {
			t.Fatal(err)
		}
		sb, _, err := packed.QuerySMJ(smjB, q, topk.SMJOptions{K: 5})
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, q.String()+"/SMJ", sa, sb)
	}
}

func TestMappedIndexSupportsDeltaAndFlush(t *testing.T) {
	ix := buildTestIndex(t)
	path := writeSnapshotFile(t, ix)
	mapped, err := OpenSnapshotFile(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()

	feats := ix.Inverted.TopFeaturesByDocFreq(2)
	q := corpus.NewQuery(corpus.OpOR, feats...)

	dA := mustDelta(ix)
	dB := mustDelta(mapped) // materializes the lazy sections
	doc := ix.Corpus.MustDoc(0)
	dA.AddDocument(doc)
	dB.AddDocument(doc)

	a, _, err := dA.QueryNRA(q, topk.NRAOptions{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := dB.QueryNRA(q, topk.NRAOptions{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "delta NRA", a, b)

	flushed, err := dB.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if flushed.Corpus.Len() != ix.Corpus.Len()+1 {
		t.Fatalf("flushed corpus has %d docs", flushed.Corpus.Len())
	}
}

func TestOpenSnapshotFileRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.snap")
	if err := os.WriteFile(path, []byte("not a snapshot at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSnapshotFile(path, 1); err == nil {
		t.Fatal("garbage accepted")
	}
}

package core

import (
	"bytes"
	"math"
	"reflect"
	"sort"
	"testing"

	"phrasemine/internal/corpus"
	"phrasemine/internal/diskio"
	"phrasemine/internal/phrasedict"
	"phrasemine/internal/plist"
	"phrasemine/internal/synth"
	"phrasemine/internal/textproc"
	"phrasemine/internal/topk"
)

// testIndex builds a small but realistic index once per test binary.
var sharedIndex *Index

func getIndex(t *testing.T) *Index {
	t.Helper()
	if sharedIndex != nil {
		return sharedIndex
	}
	cfg := synth.ReutersLike().Scale(0.02) // ~430 docs
	c, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(c, BuildOptions{
		Extractor: textproc.ExtractorOptions{MinWords: 1, MaxWords: 6, MinDocFreq: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	sharedIndex = ix
	return ix
}

// someQuery returns a query whose features all occur in the corpus.
func someQuery(t *testing.T, ix *Index, op corpus.Operator, nWords int) corpus.Query {
	t.Helper()
	// Use the most frequent plain-word features (skip facets).
	var words []string
	for _, f := range ix.Inverted.TopFeaturesByDocFreq(50) {
		if !bytes.ContainsRune([]byte(f), ':') {
			words = append(words, f)
		}
		if len(words) == nWords {
			break
		}
	}
	if len(words) < nWords {
		t.Fatalf("not enough words for a %d-word query", nWords)
	}
	return corpus.NewQuery(op, words...)
}

func TestBuildStructuralInvariants(t *testing.T) {
	ix := getIndex(t)
	if ix.NumPhrases() == 0 {
		t.Fatal("no phrases extracted")
	}
	if len(ix.PhraseDocs) != ix.NumPhrases() || len(ix.PhraseDF) != ix.NumPhrases() {
		t.Fatal("phrase table sizes disagree")
	}
	// DF matches postings; postings sorted.
	for p, docs := range ix.PhraseDocs {
		if int(ix.PhraseDF[p]) != len(docs) {
			t.Fatalf("phrase %d: DF %d != |docs| %d", p, ix.PhraseDF[p], len(docs))
		}
		for i := 1; i < len(docs); i++ {
			if docs[i-1] >= docs[i] {
				t.Fatalf("phrase %d postings unsorted", p)
			}
		}
	}
	// Forward lists sorted, and every phrase occurrence is reflected.
	entries := 0
	for d, phrases := range ix.Forward {
		for i := 1; i < len(phrases); i++ {
			if phrases[i-1] >= phrases[i] {
				t.Fatalf("doc %d forward list unsorted", d)
			}
		}
		entries += len(phrases)
	}
	total := 0
	for _, docs := range ix.PhraseDocs {
		total += len(docs)
	}
	if entries != total {
		t.Fatalf("forward entries %d != posting entries %d", entries, total)
	}
	// Dictionary round-trips.
	for p := 0; p < ix.NumPhrases(); p += 97 {
		text, err := ix.PhraseText(phrasedict.PhraseID(p))
		if err != nil {
			t.Fatal(err)
		}
		id, ok := mustID(ix.Dict, text)
		if !ok || id != phrasedict.PhraseID(p) {
			t.Fatalf("dict round trip failed for %d (%q)", p, text)
		}
	}
}

func TestBuildRejectsEmptyCorpus(t *testing.T) {
	if _, err := Build(corpus.New(), BuildOptions{}); err == nil {
		t.Fatal("empty corpus should error")
	}
	if _, err := Build(nil, BuildOptions{}); err == nil {
		t.Fatal("nil corpus should error")
	}
}

func TestListsMatchEq13(t *testing.T) {
	ix := getIndex(t)
	// Spot-check P(q|p) = |docs(q) ∩ docs(p)| / |docs(p)| on a frequent
	// word.
	q := someQuery(t, ix, corpus.OpOR, 1)
	word := q.Features[0]
	wordList, err := ix.Inverted.Docs(word)
	if err != nil {
		t.Fatal(err)
	}
	wordDocs := corpus.BitmapFromList(wordList, ix.Corpus.Len())
	list := ix.Lists[word]
	if len(list) == 0 {
		t.Fatalf("no list for %q", word)
	}
	for _, e := range list[:min(len(list), 200)] {
		co := wordDocs.IntersectCountList(ix.PhraseDocs[e.Phrase])
		want := float64(co) / float64(ix.PhraseDF[e.Phrase])
		if math.Abs(e.Prob-want) > 1e-12 {
			t.Fatalf("P(%s|%d) = %v, want %v", word, e.Phrase, e.Prob, want)
		}
	}
}

func TestNRAvsSMJvsFullAggregation(t *testing.T) {
	ix := getIndex(t)
	smjFull := mustSMJ(ix, 1.0)
	for _, op := range []corpus.Operator{corpus.OpAND, corpus.OpOR} {
		for _, n := range []int{2, 3} {
			q := someQuery(t, ix, op, n)
			nra, _, err := ix.QueryNRA(q, topk.NRAOptions{K: 5})
			if err != nil {
				t.Fatal(err)
			}
			smj, _, err := ix.QuerySMJ(smjFull, q, topk.SMJOptions{K: 5})
			if err != nil {
				t.Fatal(err)
			}
			a := idSet(nra)
			b := idSet(smj)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%v: NRA set %v != SMJ set %v", q, a, b)
			}
		}
	}
}

func idSet(rs []topk.Result) []phrasedict.PhraseID {
	out := make([]phrasedict.PhraseID, len(rs))
	for i, r := range rs {
		out[i] = r.Phrase
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestGMAndExactAgreeOnRealCorpus(t *testing.T) {
	ix := getIndex(t)
	g, err := ix.GM()
	if err != nil {
		t.Fatal(err)
	}
	e, err := ix.Exact()
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range []corpus.Operator{corpus.OpAND, corpus.OpOR} {
		q := someQuery(t, ix, op, 2)
		gr, _, err := g.TopK(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		er, err := e.TopK(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gr, er) {
			t.Fatalf("%v: GM %v != Exact %v", q, gr, er)
		}
	}
}

func TestQueryUnknownWordFullBuild(t *testing.T) {
	ix := getIndex(t)
	q := corpus.NewQuery(corpus.OpOR, "zzzz-not-a-word")
	res, _, err := ix.QueryNRA(q, topk.NRAOptions{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("results for unknown word: %v", res)
	}
}

func TestRestrictedBuildErrorsOnUncoveredFeature(t *testing.T) {
	cfg := synth.ReutersLike().Scale(0.005)
	c, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	full, err := Build(c, BuildOptions{
		Extractor: textproc.ExtractorOptions{MinDocFreq: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	covered := full.Inverted.TopFeaturesByDocFreq(3)
	uncovered := full.Inverted.TopFeaturesByDocFreq(10)[9]
	ix, err := Build(c, BuildOptions{
		Extractor:    textproc.ExtractorOptions{MinDocFreq: 3},
		ListFeatures: covered,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix.QueryNRA(corpus.NewQuery(corpus.OpOR, covered[0]), topk.NRAOptions{K: 3}); err != nil {
		t.Fatalf("covered feature should work: %v", err)
	}
	if _, _, err := ix.QueryNRA(corpus.NewQuery(corpus.OpOR, uncovered), topk.NRAOptions{K: 3}); err == nil {
		t.Fatal("uncovered existing feature should error under restricted build")
	}
}

func TestDiskIndexAgreesWithMemory(t *testing.T) {
	ix := getIndex(t)
	disk, err := diskio.NewDisk(diskio.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	reader, err := ix.OpenSimDiskIndex(disk, "lists.idx", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range []corpus.Operator{corpus.OpAND, corpus.OpOR} {
		q := someQuery(t, ix, op, 2)
		mem, _, err := ix.QueryNRA(q, topk.NRAOptions{K: 5})
		if err != nil {
			t.Fatal(err)
		}
		dsk, _, err := ix.QueryNRADisk(reader, q, topk.NRAOptions{K: 5})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(idSet(mem), idSet(dsk)) {
			t.Fatalf("%v: memory %v != disk %v", q, idSet(mem), idSet(dsk))
		}
	}
	if disk.Stats().IOTimeMS == 0 {
		t.Fatal("disk queries accounted no IO time")
	}
}

func TestDiskIndexRejectsIDOrdering(t *testing.T) {
	ix := getIndex(t)
	var buf bytes.Buffer
	smj := mustSMJ(ix, 0.5)
	if _, err := plist.WriteIDIndex(&buf, smj.Lists); err != nil {
		t.Fatal(err)
	}
	r, err := plist.OpenReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	q := someQuery(t, ix, corpus.OpOR, 2)
	if _, _, err := ix.QueryNRADisk(r, q, topk.NRAOptions{K: 5}); err == nil {
		t.Fatal("NRA over an ID-ordered index should be rejected")
	}
}

func TestResolveAttachesTextAndEstimate(t *testing.T) {
	ix := getIndex(t)
	q := someQuery(t, ix, corpus.OpOR, 2)
	res, _, err := ix.QueryNRA(q, topk.NRAOptions{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	mined, err := ix.Resolve(res, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(mined) != len(res) {
		t.Fatal("Resolve changed cardinality")
	}
	for i, m := range mined {
		if m.Phrase == "" {
			t.Fatalf("result %d has empty phrase text", i)
		}
		if m.Estimate < 0 {
			t.Fatalf("negative interestingness estimate: %+v", m)
		}
		if m.ID != res[i].Phrase {
			t.Fatal("Resolve reordered results")
		}
	}
}

func TestIndexSizeAccounting(t *testing.T) {
	ix := getIndex(t)
	full := ix.ListIndexSize(1.0)
	half := ix.ListIndexSize(0.5)
	tenth := ix.ListIndexSize(0.1)
	if !(tenth < half && half < full) {
		t.Fatalf("sizes not monotone: %d, %d, %d", tenth, half, full)
	}
	if full == 0 {
		t.Fatal("full index size is zero")
	}
	if est := ix.EstimateFullIndexSize(1.0); est < full {
		// The estimate extrapolates the built features' average list
		// length to the whole vocabulary, so with a full-vocabulary
		// build it equals the true size (within rounding).
		diff := math.Abs(float64(est - full))
		if diff/float64(full) > 0.01 {
			t.Fatalf("full-build estimate %d far from true %d", est, full)
		}
	}
}

func TestWritePhraseDictRoundTrip(t *testing.T) {
	ix := getIndex(t)
	var buf bytes.Buffer
	if _, err := ix.WritePhraseDict(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := phrasedict.ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != ix.NumPhrases() {
		t.Fatalf("reloaded dict has %d phrases, want %d", d2.Len(), ix.NumPhrases())
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestGMCompressedAgreesOnRealCorpus(t *testing.T) {
	ix := getIndex(t)
	g, err := ix.GM()
	if err != nil {
		t.Fatal(err)
	}
	gc, err := ix.GMCompressed()
	if err != nil {
		t.Fatal(err)
	}
	if r := gc.CompressionRatio(); r >= 1.0 || r <= 0 {
		t.Fatalf("CompressionRatio = %v, want (0,1)", r)
	}
	for _, op := range []corpus.Operator{corpus.OpAND, corpus.OpOR} {
		for _, n := range []int{1, 2, 3} {
			q := someQuery(t, ix, op, n)
			want, _, err := g.TopK(q, 5)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := gc.TopK(q, 5)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%v: compressed %v != plain %v", q, got, want)
			}
		}
	}
}

func TestSimitsisOnRealCorpus(t *testing.T) {
	ix := getIndex(t)
	s, err := ix.Simitsis(2)
	if err != nil {
		t.Fatal(err)
	}
	e, err := ix.Exact()
	if err != nil {
		t.Fatal(err)
	}
	q := someQuery(t, ix, corpus.OpOR, 2)
	res, _, err := s.TopK(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("Simitsis returned nothing")
	}
	// Returned scores are the true interestingness values.
	dPrime, err := e.Select(q)
	if err != nil {
		t.Fatal(err)
	}
	set := corpus.BitmapFromList(dPrime, ix.Corpus.Len())
	for _, r := range res {
		if want := e.Interestingness(r.Phrase, set); r.Score != want {
			t.Fatalf("Simitsis score %v != exact %v for phrase %d", r.Score, want, r.Phrase)
		}
	}
}

package bitpack

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

func roundTrip(t *testing.T, vals []uint32) []byte {
	t.Helper()
	frame := AppendFrame(nil, vals)
	if got := FrameSize(vals); got != len(frame) {
		t.Fatalf("FrameSize = %d, encoded %d bytes", got, len(frame))
	}
	dst := make([]uint32, len(vals))
	n, err := DecodeFrame(dst, frame)
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if n != len(frame) {
		t.Fatalf("DecodeFrame consumed %d of %d bytes", n, len(frame))
	}
	for i := range vals {
		if dst[i] != vals[i] {
			t.Fatalf("value %d: got %d want %d (width %d)", i, dst[i], vals[i], frame[0])
		}
	}
	return frame
}

func TestFrameRoundTrip(t *testing.T) {
	cases := map[string][]uint32{
		"empty":        {},
		"single-zero":  {0},
		"single-max":   {math.MaxUint32},
		"all-zero":     make([]uint32, 200),
		"small":        {1, 2, 3, 4, 5, 6, 7},
		"mixed-widths": {1, 1 << 10, 3, 1 << 20, 7, math.MaxUint32, 2},
		"boundary-7":   {127, 127, 127, 127},
		"boundary-8":   {128, 255, 129, 200},
	}
	for i := uint(1); i <= 32; i++ {
		v := uint32(1)<<i - 1
		cases["width-"+string(rune('a'+i%26))+"-"+string(rune('0'+i/10))+string(rune('0'+i%10))] =
			[]uint32{v, v / 2, v, 0, v}
	}
	for name, vals := range cases {
		t.Run(name, func(t *testing.T) { roundTrip(t, vals) })
	}
}

func TestFrameRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(maxFrameValues + 1)
		vals := make([]uint32, n)
		shift := uint(rng.Intn(33))
		for i := range vals {
			vals[i] = uint32(rng.Uint64())
			if shift < 32 {
				vals[i] &= uint32(1)<<shift - 1
			}
			// Sprinkle outliers to exercise the exception path.
			if rng.Intn(20) == 0 {
				vals[i] = uint32(rng.Uint64())
			}
		}
		roundTrip(t, vals)
	}
}

func TestZeroWidthFrame(t *testing.T) {
	vals := make([]uint32, 127)
	frame := roundTrip(t, vals)
	if frame[0] != 0 {
		t.Fatalf("all-zero values packed at width %d, want 0", frame[0])
	}
	if len(frame) != 2 {
		t.Fatalf("zero-width frame is %d bytes, want 2", len(frame))
	}
}

func TestExceptionsPatched(t *testing.T) {
	// 126 tiny values and one huge one: the huge value must become an
	// exception rather than inflating the frame width to 32 bits.
	vals := make([]uint32, 127)
	for i := range vals {
		vals[i] = uint32(i % 4)
	}
	vals[63] = math.MaxUint32
	frame := roundTrip(t, vals)
	if frame[0] >= 32 {
		t.Fatalf("outlier inflated width to %d", frame[0])
	}
	if frame[1] != 1 {
		t.Fatalf("expected 1 exception, frame has %d", frame[1])
	}
}

func TestPaddedLen(t *testing.T) {
	for n := 0; n <= 300; n++ {
		for b := uint(0); b <= 32; b++ {
			got := PaddedLen(n, b)
			if n == 0 || b == 0 {
				if got != 0 {
					t.Fatalf("PaddedLen(%d,%d) = %d, want 0", n, b, got)
				}
				continue
			}
			// Must cover the 8-byte load at the last value's start byte.
			need := int(uint(n-1)*b)>>3 + 8
			if got != need {
				t.Fatalf("PaddedLen(%d,%d) = %d, want %d", n, b, got, need)
			}
			// And must cover all value bits.
			if got < (n*int(b)+7)/8 {
				t.Fatalf("PaddedLen(%d,%d) = %d shorter than payload", n, b, got)
			}
		}
	}
}

func TestUvarintLen(t *testing.T) {
	var buf [binary.MaxVarintLen64]byte
	for _, v := range []uint64{0, 1, 127, 128, 1 << 14, 1<<14 - 1, 1 << 21, math.MaxUint32, math.MaxUint64} {
		if got, want := UvarintLen(v), binary.PutUvarint(buf[:], v); got != want {
			t.Fatalf("UvarintLen(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestDecodeFrameCorrupt(t *testing.T) {
	vals := []uint32{5, 1000000, 9, 12}
	good := AppendFrame(nil, vals)
	dst := make([]uint32, len(vals))
	cases := map[string][]byte{
		"empty":            {},
		"header-only-byte": {8},
		"width-too-wide":   {40, 0},
		"too-many-ex":      {0, 200, 0, 0},
		"truncated-packed": good[:len(good)-3],
	}
	// Exception position out of range.
	bad := append([]byte(nil), good...)
	// Find the exception section: width byte, count byte, packed array.
	packed := PaddedLen(len(vals), uint(good[0]))
	bad[2+packed] = 250
	cases["ex-pos-out-of-range"] = bad
	// Non-increasing positions: craft a frame with two exceptions manually.
	two := []byte{0, 2, 3}
	two = binary.AppendUvarint(two, 7)
	two = append(two, 3)
	two = binary.AppendUvarint(two, 8)
	cases["ex-pos-not-increasing"] = two
	// Exception value overflowing uint32.
	over := []byte{0, 1, 0}
	over = binary.AppendUvarint(over, math.MaxUint32+1)
	cases["ex-value-overflow"] = over
	// Truncated exception varint.
	trunc := []byte{0, 1, 0, 0x80}
	cases["ex-value-truncated"] = trunc

	for name, src := range cases {
		if _, err := DecodeFrame(dst, src); err == nil {
			t.Errorf("%s: DecodeFrame accepted corrupt frame", name)
		}
	}
}

func TestDecodeFrameExtraBytesIgnored(t *testing.T) {
	// DecodeFrame must consume exactly its own bytes so block decoders can
	// detect trailing garbage themselves.
	vals := []uint32{3, 9, 27}
	frame := AppendFrame(nil, vals)
	withTail := append(append([]byte(nil), frame...), 0xAA, 0xBB)
	dst := make([]uint32, len(vals))
	n, err := DecodeFrame(dst, withTail)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(frame) {
		t.Fatalf("consumed %d, want %d", n, len(frame))
	}
}

func TestAppendFrameDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vals := make([]uint32, 127)
	for i := range vals {
		vals[i] = uint32(rng.Intn(1 << 16))
	}
	a := AppendFrame(nil, vals)
	b := AppendFrame(nil, vals)
	if !bytes.Equal(a, b) {
		t.Fatal("AppendFrame is not deterministic")
	}
}

func TestCodecValidate(t *testing.T) {
	if err := CodecAuto.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := CodecVarint.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Codec(9).Validate(); err == nil {
		t.Fatal("Codec(9).Validate() accepted")
	}
}

// Package bitpack implements the fixed bit-width packed value frames
// shared by the plist and corpus block codecs: every value of a frame is
// stored in the same b-bit slot (b = the width of the largest "normal"
// value), and the few values too wide for the frame are patched in
// afterwards from an exception list — the PFOR scheme. Decoding is
// branch-free: value j lives at bit offset j*b, so an 8-byte little-endian
// load at byte offset (j*b)/8 shifted right by (j*b)%8 and masked yields it
// without any per-value conditionals, and the frame is padded so those wide
// loads never run off the end.
//
// Frame layout (appended by AppendFrame, parsed by DecodeFrame):
//
//	width      uint8   bit width b of the packed slots, 0..32
//	exceptions uint8   number of patched values
//	packed     PaddedLen(n, b) bytes: n values of b bits each, LSB first
//	           within a little-endian byte stream (exception slots hold 0)
//	patches    exceptions × { pos uint8, value uvarint }, pos strictly
//	           increasing
//
// The frame does not store n; callers recover it from their own block
// geometry (entry counts live in list directories).
package bitpack

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
)

// Codec selects the physical block codec at build time. The zero value
// picks per block by encoded size, so builders stay deterministic; forcing
// varint exists for differential testing (building a varint twin of a
// packed index) and diagnostics.
type Codec uint8

const (
	// CodecAuto chooses packed or varint per block, whichever encodes
	// smaller (packed wins ties — it decodes faster at equal size).
	CodecAuto Codec = iota
	// CodecVarint forces the delta/varint encoding for every block.
	CodecVarint
)

// Validate rejects codec values outside the defined set.
func (c Codec) Validate() error {
	if c != CodecAuto && c != CodecVarint {
		return fmt.Errorf("bitpack: unknown codec %d", uint8(c))
	}
	return nil
}

// MaxWidth is the widest packed slot: values are uint32.
const MaxWidth = 32

// maxFrameValues bounds n so patch positions and the exception count both
// fit their uint8 encodings.
const maxFrameValues = 255

// PaddedLen reports the byte length of the packed array holding n values
// of b bits, including the tail padding that keeps the decoder's 8-byte
// wide loads in bounds (the last value starts at bit (n-1)*b, so the load
// covering it touches bytes [((n-1)*b)/8, ((n-1)*b)/8+8)).
func PaddedLen(n int, b uint) int {
	if n == 0 || b == 0 {
		return 0
	}
	return int(uint(n-1)*b)>>3 + 8
}

// UvarintLen reports the encoded size of v in bytes.
func UvarintLen(v uint64) int {
	return (bits.Len64(v|1) + 6) / 7
}

// FrameSize reports the bytes AppendFrame would emit for vals: the chosen
// width's packed array plus its exception patches and the 2-byte frame
// header. It runs the same width selection as AppendFrame, so builders can
// compare codecs without encoding twice.
func FrameSize(vals []uint32) int {
	_, size := chooseWidth(vals)
	return size
}

// chooseWidth picks the frame width minimizing total encoded bytes over
// b in [0, MaxWidth]: PaddedLen(n, b) for the packed array plus, for every
// value wider than b, a 1-byte position and its uvarint bytes. Ties go to
// the smaller width (smaller packed array, deterministic choice).
func chooseWidth(vals []uint32) (width uint, size int) {
	// exCost[L] aggregates the patch bytes and counts of values of exactly
	// L significant bits; suffix sums then give the exception cost of any
	// candidate width in one pass.
	var exCost [MaxWidth + 1]int
	for _, v := range vals {
		exCost[bits.Len32(v)] += 1 + UvarintLen(uint64(v))
	}
	// suffixCost[b] = patch bytes for every value wider than b bits.
	var suffixCost [MaxWidth + 1]int
	for l := MaxWidth - 1; l >= 0; l-- {
		suffixCost[l] = suffixCost[l+1] + exCost[l+1]
	}
	best, bestW := math.MaxInt, uint(0)
	for b := uint(0); b <= MaxWidth; b++ {
		cost := 2 + PaddedLen(len(vals), b) + suffixCost[b]
		if cost < best {
			best, bestW = cost, b
		}
	}
	return bestW, best
}

// AppendFrame appends the packed frame encoding of vals to buf. len(vals)
// must be at most 255 (patch positions and counts are single bytes); block
// codecs call it with at most BlockLen-1 values.
func AppendFrame(buf []byte, vals []uint32) []byte {
	if len(vals) > maxFrameValues {
		panic(fmt.Sprintf("bitpack: frame of %d values exceeds %d", len(vals), maxFrameValues))
	}
	b, _ := chooseWidth(vals)
	nEx := 0
	for _, v := range vals {
		if uint(bits.Len32(v)) > b {
			nEx++
		}
	}
	buf = append(buf, uint8(b), uint8(nEx))
	start := len(buf)
	buf = append(buf, make([]byte, PaddedLen(len(vals), b))...)
	if b > 0 {
		dst := buf[start:]
		for j, v := range vals {
			if uint(bits.Len32(v)) > b {
				continue // exception slot stays 0
			}
			off := uint(j) * b
			idx := off >> 3
			w := binary.LittleEndian.Uint64(dst[idx:])
			w |= uint64(v) << (off & 7)
			binary.LittleEndian.PutUint64(dst[idx:], w)
		}
	}
	for j, v := range vals {
		if uint(bits.Len32(v)) > b {
			buf = append(buf, uint8(j))
			buf = binary.AppendUvarint(buf, uint64(v))
		}
	}
	return buf
}

// DecodeFrame decodes a frame of len(dst) values from src into dst and
// returns the bytes consumed. It validates structural soundness — width and
// exception-count ranges, in-bounds packed array, strictly increasing patch
// positions, uint32-ranged patch values — so corrupt frames fail loudly.
func DecodeFrame(dst []uint32, src []byte) (int, error) {
	if len(src) < 2 {
		return 0, fmt.Errorf("bitpack: truncated frame header (%d bytes)", len(src))
	}
	b := uint(src[0])
	nEx := int(src[1])
	if b > MaxWidth {
		return 0, fmt.Errorf("bitpack: frame width %d exceeds %d", b, MaxWidth)
	}
	if nEx > len(dst) {
		return 0, fmt.Errorf("bitpack: %d exceptions for %d values", nEx, len(dst))
	}
	pos := 2
	packed := PaddedLen(len(dst), b)
	if pos+packed > len(src) {
		return 0, fmt.Errorf("bitpack: truncated packed array (%d of %d bytes)", len(src)-pos, packed)
	}
	unpack(dst, src[pos:pos+packed], b)
	pos += packed
	prev := -1
	for e := 0; e < nEx; e++ {
		if pos >= len(src) {
			return 0, fmt.Errorf("bitpack: truncated exception %d", e)
		}
		slot := int(src[pos])
		pos++
		if slot >= len(dst) {
			return 0, fmt.Errorf("bitpack: exception position %d out of range %d", slot, len(dst))
		}
		if slot <= prev {
			return 0, fmt.Errorf("bitpack: exception positions not increasing (%d after %d)", slot, prev)
		}
		prev = slot
		v, w := binary.Uvarint(src[pos:])
		if w <= 0 {
			return 0, fmt.Errorf("bitpack: truncated exception value at position %d", slot)
		}
		pos += w
		if v > math.MaxUint32 {
			return 0, fmt.Errorf("bitpack: exception value %d overflows uint32", v)
		}
		dst[slot] = uint32(v)
	}
	return pos, nil
}

// unpack decodes len(dst) fixed-width values from src (which must hold
// PaddedLen(len(dst), b) bytes). The loop body is branch-free — one wide
// load, shift and mask per value — and unrolled 8× so the block decode hot
// path retires a block of slots per iteration.
func unpack(dst []uint32, src []byte, b uint) {
	if b == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	// For b = 32 the shift count 1<<b wraps to 0, so the mask wraps to
	// ^uint32(0) — exactly the full-width mask needed.
	mask := uint32(1)<<b - 1
	n := len(dst)
	i := 0
	if b <= 7 {
		// A group of 8 values is exactly b bytes, so groups start
		// byte-aligned and (for b <= 7) span at most 56 bits: one wide
		// load serves the whole group — one bounds check per 8 values
		// instead of per value. Small widths are the common case (dense
		// ID gaps), so this is the decode fast path.
		g := uint(0)
		for ; i+8 <= n; i += 8 {
			w := binary.LittleEndian.Uint64(src[g:])
			dst[i+0] = uint32(w) & mask
			dst[i+1] = uint32(w>>(1*b)) & mask
			dst[i+2] = uint32(w>>(2*b)) & mask
			dst[i+3] = uint32(w>>(3*b)) & mask
			dst[i+4] = uint32(w>>(4*b)) & mask
			dst[i+5] = uint32(w>>(5*b)) & mask
			dst[i+6] = uint32(w>>(6*b)) & mask
			dst[i+7] = uint32(w>>(7*b)) & mask
			g += b
		}
		off := uint(i) * b
		for ; i < n; i++ {
			dst[i] = uint32(binary.LittleEndian.Uint64(src[off>>3:])>>(off&7)) & mask
			off += b
		}
		return
	}
	off := uint(0)
	for ; i+8 <= n; i += 8 {
		dst[i+0] = uint32(binary.LittleEndian.Uint64(src[(off+0*b)>>3:])>>((off+0*b)&7)) & mask
		dst[i+1] = uint32(binary.LittleEndian.Uint64(src[(off+1*b)>>3:])>>((off+1*b)&7)) & mask
		dst[i+2] = uint32(binary.LittleEndian.Uint64(src[(off+2*b)>>3:])>>((off+2*b)&7)) & mask
		dst[i+3] = uint32(binary.LittleEndian.Uint64(src[(off+3*b)>>3:])>>((off+3*b)&7)) & mask
		dst[i+4] = uint32(binary.LittleEndian.Uint64(src[(off+4*b)>>3:])>>((off+4*b)&7)) & mask
		dst[i+5] = uint32(binary.LittleEndian.Uint64(src[(off+5*b)>>3:])>>((off+5*b)&7)) & mask
		dst[i+6] = uint32(binary.LittleEndian.Uint64(src[(off+6*b)>>3:])>>((off+6*b)&7)) & mask
		dst[i+7] = uint32(binary.LittleEndian.Uint64(src[(off+7*b)>>3:])>>((off+7*b)&7)) & mask
		off += 8 * b
	}
	for ; i < n; i++ {
		dst[i] = uint32(binary.LittleEndian.Uint64(src[off>>3:])>>(off&7)) & mask
		off += b
	}
}

// Package phrasedict implements the paper's Phrase List (Section 4.2.1):
// a fixed-width array of phrase strings where the position of a phrase
// defines its integer ID. Each record occupies exactly Width bytes, shorter
// phrases are zero-padded, and the phrase with ID i lives in the byte range
// [i*Width, (i+1)*Width) — the paper states the same arithmetic 1-based;
// IDs here are 0-based as is idiomatic in Go.
//
// The dictionary has an in-memory form (Dict) and a file-resident form
// (FileDict) that resolves IDs through an io.ReaderAt using the same offset
// calculation, as a disk-based query system would at result-rendering time.
package phrasedict

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"phrasemine/internal/diskio"
)

// PhraseID identifies a phrase by its position in the phrase list.
type PhraseID uint32

// DefaultWidth is the paper's record width s = 50 bytes, reported to cover
// every phrase in their corpora ("we use an s value of 50").
const DefaultWidth = 50

// magic identifies serialized phrase dictionaries (8 bytes).
var magic = [8]byte{'P', 'M', 'D', 'I', 'C', 'T', '0', '1'}

// headerSize is magic + uint32 width + uint32 count.
const headerSize = 16

// Dict is the in-memory phrase list. Lookup by ID is O(1) offset arithmetic;
// lookup by phrase uses a side map built at construction.
type Dict struct {
	width    int
	n        int
	data     []byte // n*width bytes
	byPhrase map[string]PhraseID

	// mapOnce defers building byPhrase for dictionaries opened with
	// FromBytes: ID-to-phrase lookups are pure offset arithmetic over data
	// (which may alias a mapped snapshot section), so the O(|P|) reverse
	// map is only built if a phrase-to-ID lookup ever happens (delta
	// updates); plain serving never pays it.
	mapOnce sync.Once
	mapErr  error
}

// Build creates a dictionary from phrases in the given order (the slice
// index becomes the PhraseID). Width 0 selects DefaultWidth. Build fails on
// phrases longer than width bytes, on embedded NUL bytes (reserved for
// padding), on empty phrases, and on duplicates.
func Build(phrases []string, width int) (*Dict, error) {
	if width == 0 {
		width = DefaultWidth
	}
	if width < 1 {
		return nil, fmt.Errorf("phrasedict: invalid width %d", width)
	}
	d := &Dict{
		width:    width,
		n:        len(phrases),
		data:     make([]byte, len(phrases)*width),
		byPhrase: make(map[string]PhraseID, len(phrases)),
	}
	for i, p := range phrases {
		if p == "" {
			return nil, fmt.Errorf("phrasedict: empty phrase at index %d", i)
		}
		if len(p) > width {
			return nil, fmt.Errorf("phrasedict: phrase %q is %d bytes, exceeds width %d", p, len(p), width)
		}
		if bytes.IndexByte([]byte(p), 0) >= 0 {
			return nil, fmt.Errorf("phrasedict: phrase at index %d contains NUL", i)
		}
		if prev, dup := d.byPhrase[p]; dup {
			return nil, fmt.Errorf("phrasedict: duplicate phrase %q at indexes %d and %d", p, prev, i)
		}
		copy(d.data[i*width:], p)
		d.byPhrase[p] = PhraseID(i)
	}
	return d, nil
}

// Len reports the number of phrases (|P|).
func (d *Dict) Len() int { return d.n }

// Width reports the record width in bytes (the paper's s).
func (d *Dict) Width() int { return d.width }

// SizeBytes reports the size of the record payload (Len * Width), i.e. the
// on-disk size of the phrase list without the header.
func (d *Dict) SizeBytes() int { return len(d.data) }

// Phrase resolves an ID to its string via offset arithmetic.
func (d *Dict) Phrase(id PhraseID) (string, error) {
	if int(id) >= d.n {
		return "", fmt.Errorf("phrasedict: id %d out of range [0,%d)", id, d.n)
	}
	return d.record(int(id)), nil
}

// MustPhrase is Phrase for callers that already validated the ID.
func (d *Dict) MustPhrase(id PhraseID) string {
	return d.record(int(id))
}

func (d *Dict) record(i int) string {
	rec := d.data[i*d.width : (i+1)*d.width]
	return string(trimPadding(rec))
}

// ID resolves a phrase string to its ID. On a dictionary opened with
// FromBytes the first call builds the reverse map; a corrupt record set
// (which ReadFrom would have rejected eagerly) returns an error wrapping
// diskio.ErrCorruptSnapshot, sticky across calls. Once's own fast path is
// a single atomic load, so the unconditional Do keeps concurrent ID calls
// race-free without a mutex around the map pointer.
func (d *Dict) ID(phrase string) (PhraseID, bool, error) {
	d.mapOnce.Do(d.buildMapIfMissing)
	if d.mapErr != nil {
		return 0, false, d.mapErr
	}
	id, ok := d.byPhrase[phrase]
	return id, ok, nil
}

// buildMapIfMissing is the Once body for dictionaries whose map was built
// eagerly (Build, ReadFrom): it leaves the existing map untouched.
func (d *Dict) buildMapIfMissing() {
	if d.byPhrase == nil {
		d.buildMap()
	}
}

// buildMap materializes the phrase-to-ID map, validating record contents.
// Validation failures wrap diskio.ErrCorruptSnapshot: the records came
// from a snapshot section, so an invalid record means bad stored bytes.
func (d *Dict) buildMap() {
	m := make(map[string]PhraseID, d.n)
	for i := 0; i < d.n; i++ {
		p := d.record(i)
		if p == "" {
			d.mapErr = diskio.Corruptf("phrasedict: empty record %d", i)
			return
		}
		if prev, dup := m[p]; dup {
			d.mapErr = diskio.Corruptf("phrasedict: duplicate phrase %q at %d and %d", p, prev, i)
			return
		}
		m[p] = PhraseID(i)
	}
	d.byPhrase = m
}

// FromBytes opens a serialized dictionary (the WriteTo format) directly
// over data without copying records or building the reverse lookup map:
// cost is O(header). data must stay valid and immutable for the Dict's
// lifetime — it may be a memory-mapped snapshot section. ID-to-phrase
// resolution reads records in place; the phrase-to-ID map materializes
// lazily on the first ID call.
func FromBytes(data []byte) (*Dict, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("phrasedict: %d bytes is shorter than the header", len(data))
	}
	if !bytes.Equal(data[:8], magic[:]) {
		return nil, fmt.Errorf("phrasedict: bad magic %q", data[:8])
	}
	width := int(binary.LittleEndian.Uint32(data[8:12]))
	count := int(binary.LittleEndian.Uint32(data[12:16]))
	if width < 1 || width > 1<<16 {
		return nil, fmt.Errorf("phrasedict: implausible width %d", width)
	}
	records := data[headerSize:]
	if int64(len(records)) != int64(width)*int64(count) {
		return nil, fmt.Errorf("phrasedict: %d record bytes for %d records of width %d", len(records), count, width)
	}
	return &Dict{width: width, n: count, data: records}, nil
}

// trimPadding strips the trailing zero padding of a record.
func trimPadding(rec []byte) []byte {
	end := bytes.IndexByte(rec, 0)
	if end < 0 {
		end = len(rec)
	}
	return rec[:end]
}

// WriteTo serializes the dictionary: magic, width, count (both uint32
// little-endian), then the fixed-width records.
func (d *Dict) WriteTo(w io.Writer) (int64, error) {
	var hdr [headerSize]byte
	copy(hdr[:8], magic[:])
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(d.width))
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(d.n))
	n1, err := w.Write(hdr[:])
	if err != nil {
		return int64(n1), fmt.Errorf("phrasedict: writing header: %w", err)
	}
	n2, err := w.Write(d.data)
	if err != nil {
		return int64(n1 + n2), fmt.Errorf("phrasedict: writing records: %w", err)
	}
	return int64(n1 + n2), nil
}

// ReadFrom deserializes a dictionary written by WriteTo.
func ReadFrom(r io.Reader) (*Dict, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("phrasedict: reading header: %w", err)
	}
	if !bytes.Equal(hdr[:8], magic[:]) {
		return nil, fmt.Errorf("phrasedict: bad magic %q", hdr[:8])
	}
	width := int(binary.LittleEndian.Uint32(hdr[8:12]))
	count := int(binary.LittleEndian.Uint32(hdr[12:16]))
	if width < 1 || width > 1<<16 {
		return nil, fmt.Errorf("phrasedict: implausible width %d", width)
	}
	data := make([]byte, width*count)
	if _, err := io.ReadFull(r, data); err != nil {
		return nil, fmt.Errorf("phrasedict: reading %d records: %w", count, err)
	}
	d := &Dict{
		width:    width,
		n:        count,
		data:     data,
		byPhrase: make(map[string]PhraseID, count),
	}
	for i := 0; i < count; i++ {
		p := d.record(i)
		if p == "" {
			return nil, fmt.Errorf("phrasedict: empty record %d", i)
		}
		if prev, dup := d.byPhrase[p]; dup {
			return nil, fmt.Errorf("phrasedict: duplicate phrase %q at %d and %d", p, prev, i)
		}
		d.byPhrase[p] = PhraseID(i)
	}
	return d, nil
}

// FileDict resolves phrase IDs against a serialized dictionary through an
// io.ReaderAt without loading the records into memory — the disk-resident
// access path of the paper's Figure 1 ("to find the phrase with ID = i,
// check the stretch of bytes at offset (i-1)*s+1 .. i*s").
type FileDict struct {
	r     io.ReaderAt
	width int
	n     int
}

// OpenFileDict validates the header of a serialized dictionary and returns
// a lazy reader over it.
func OpenFileDict(r io.ReaderAt) (*FileDict, error) {
	var hdr [headerSize]byte
	if _, err := r.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("phrasedict: reading header: %w", err)
	}
	if !bytes.Equal(hdr[:8], magic[:]) {
		return nil, fmt.Errorf("phrasedict: bad magic %q", hdr[:8])
	}
	return &FileDict{
		r:     r,
		width: int(binary.LittleEndian.Uint32(hdr[8:12])),
		n:     int(binary.LittleEndian.Uint32(hdr[12:16])),
	}, nil
}

// Len reports the number of phrases.
func (f *FileDict) Len() int { return f.n }

// Width reports the record width.
func (f *FileDict) Width() int { return f.width }

// Phrase reads the record of id from the underlying file.
func (f *FileDict) Phrase(id PhraseID) (string, error) {
	if int(id) >= f.n {
		return "", fmt.Errorf("phrasedict: id %d out of range [0,%d)", id, f.n)
	}
	rec := make([]byte, f.width)
	off := int64(headerSize) + int64(id)*int64(f.width)
	if _, err := f.r.ReadAt(rec, off); err != nil {
		return "", fmt.Errorf("phrasedict: reading record %d: %w", id, err)
	}
	return string(trimPadding(rec)), nil
}

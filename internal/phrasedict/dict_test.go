package phrasedict

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestBuildAndLookup(t *testing.T) {
	phrases := []string{"economic minister", "reserves", "trade reserves"}
	d, err := Build(phrases, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 {
		t.Fatalf("Len = %d", d.Len())
	}
	if d.Width() != DefaultWidth {
		t.Fatalf("Width = %d, want %d", d.Width(), DefaultWidth)
	}
	for i, p := range phrases {
		got, err := d.Phrase(PhraseID(i))
		if err != nil {
			t.Fatal(err)
		}
		if got != p {
			t.Fatalf("Phrase(%d) = %q, want %q", i, got, p)
		}
		id, ok, err := d.ID(p)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || id != PhraseID(i) {
			t.Fatalf("ID(%q) = %d,%v", p, id, ok)
		}
	}
	if _, ok, err := d.ID("absent phrase"); err != nil || ok {
		t.Fatal("ID of absent phrase should be !ok")
	}
	if _, err := d.Phrase(3); err == nil {
		t.Fatal("Phrase(3) out of range should error")
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	cases := []struct {
		name    string
		phrases []string
		width   int
	}{
		{"too long", []string{strings.Repeat("x", 51)}, 50},
		{"empty phrase", []string{""}, 50},
		{"duplicate", []string{"a", "a"}, 50},
		{"embedded NUL", []string{"a\x00b"}, 50},
		{"negative width", []string{"a"}, -1},
	}
	for _, c := range cases {
		if _, err := Build(c.phrases, c.width); err == nil {
			t.Errorf("%s: Build should fail", c.name)
		}
	}
}

func TestExactWidthPhrase(t *testing.T) {
	p := strings.Repeat("y", 50)
	d, err := Build([]string{p}, 50)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.Phrase(0)
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Fatalf("exact-width phrase mangled: %q", got)
	}
}

func TestSizeBytes(t *testing.T) {
	d, err := Build([]string{"a", "b", "c"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if d.SizeBytes() != 30 {
		t.Fatalf("SizeBytes = %d, want 30", d.SizeBytes())
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	phrases := []string{"alpha", "beta gamma", "delta epsilon zeta"}
	d, err := Build(phrases, 32)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := d.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(headerSize+3*32) {
		t.Fatalf("WriteTo wrote %d bytes, want %d", n, headerSize+3*32)
	}
	d2, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != d.Len() || d2.Width() != d.Width() {
		t.Fatal("round-trip changed shape")
	}
	for i, p := range phrases {
		if got := d2.MustPhrase(PhraseID(i)); got != p {
			t.Fatalf("round-trip Phrase(%d) = %q, want %q", i, got, p)
		}
		if id, ok, err := d2.ID(p); err != nil || !ok || id != PhraseID(i) {
			t.Fatalf("round-trip ID(%q) = %d,%v (%v)", p, id, ok, err)
		}
	}
}

func TestReadFromRejectsBadMagic(t *testing.T) {
	if _, err := ReadFrom(bytes.NewReader([]byte("NOTADICTxxxxxxxx"))); err == nil {
		t.Fatal("ReadFrom should reject bad magic")
	}
}

func TestReadFromRejectsTruncated(t *testing.T) {
	d, _ := Build([]string{"one", "two"}, 16)
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{4, headerSize - 1, headerSize + 5} {
		if _, err := ReadFrom(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("ReadFrom of %d-byte prefix should fail", cut)
		}
	}
}

func TestFileDict(t *testing.T) {
	phrases := []string{"protein expression", "binding protein hfq", "rna"}
	d, err := Build(phrases, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	fd, err := OpenFileDict(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if fd.Len() != 3 || fd.Width() != DefaultWidth {
		t.Fatalf("FileDict shape = %d x %d", fd.Len(), fd.Width())
	}
	for i, p := range phrases {
		got, err := fd.Phrase(PhraseID(i))
		if err != nil {
			t.Fatal(err)
		}
		if got != p {
			t.Fatalf("FileDict.Phrase(%d) = %q, want %q", i, got, p)
		}
	}
	if _, err := fd.Phrase(99); err == nil {
		t.Fatal("FileDict.Phrase out of range should error")
	}
}

// Property: for arbitrary unique printable phrase sets, build+serialize+
// reload preserves all ID<->phrase mappings.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint32, count uint8) bool {
		n := int(count)%20 + 1
		phrases := make([]string, n)
		for i := range phrases {
			phrases[i] = fmt.Sprintf("phrase %d %d", seed, i)
		}
		d, err := Build(phrases, 0)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if _, err := d.WriteTo(&buf); err != nil {
			return false
		}
		d2, err := ReadFrom(&buf)
		if err != nil {
			return false
		}
		for i, p := range phrases {
			if d2.MustPhrase(PhraseID(i)) != p {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

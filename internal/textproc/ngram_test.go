package textproc

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// tokensOf builds a tiny corpus from space-separated strings.
func tokensOf(docs ...string) [][]string {
	out := make([][]string, len(docs))
	var tok Tokenizer
	for i, d := range docs {
		out[i] = tok.Tokenize(d)
	}
	return out
}

func statsByPhrase(stats []PhraseStats) map[string]PhraseStats {
	m := make(map[string]PhraseStats, len(stats))
	for _, s := range stats {
		m[s.Phrase] = s
	}
	return m
}

func TestExtractBasicCounts(t *testing.T) {
	docs := tokensOf(
		"query optimization in databases",
		"query optimization is hard",
		"query optimization rules",
		"databases love query optimization",
	)
	stats, err := Extract(docs, ExtractorOptions{MinDocFreq: 3, MaxWords: 3})
	if err != nil {
		t.Fatal(err)
	}
	m := statsByPhrase(stats)
	qo, ok := m["query optimization"]
	if !ok {
		t.Fatal("phrase 'query optimization' not extracted")
	}
	if qo.DocFreq != 4 {
		t.Fatalf("docfreq(query optimization) = %d, want 4", qo.DocFreq)
	}
	if !reflect.DeepEqual(qo.Docs, []int{0, 1, 2, 3}) {
		t.Fatalf("docs = %v", qo.Docs)
	}
	if _, ok := m["optimization rules"]; ok {
		t.Fatal("'optimization rules' (docfreq 1) should be below threshold")
	}
}

func TestExtractMinDocFreqBoundary(t *testing.T) {
	docs := tokensOf("alpha beta", "alpha beta", "alpha gamma")
	stats, err := Extract(docs, ExtractorOptions{MinDocFreq: 2, MaxWords: 2})
	if err != nil {
		t.Fatal(err)
	}
	m := statsByPhrase(stats)
	if _, ok := m["alpha beta"]; !ok {
		t.Error("'alpha beta' at exactly the threshold should be kept")
	}
	if _, ok := m["alpha gamma"]; ok {
		t.Error("'alpha gamma' below threshold should be dropped")
	}
	if got := m["alpha"].DocFreq; got != 3 {
		t.Errorf("docfreq(alpha) = %d, want 3", got)
	}
}

func TestExtractDocFreqNotOccurrenceFreq(t *testing.T) {
	// "x y" appears twice inside one doc but that is one document.
	docs := tokensOf("x y and x y again", "x y")
	stats, err := Extract(docs, ExtractorOptions{MinDocFreq: 2, MaxWords: 2})
	if err != nil {
		t.Fatal(err)
	}
	m := statsByPhrase(stats)
	if got := m["x y"].DocFreq; got != 2 {
		t.Fatalf("docfreq(x y) = %d, want 2 (distinct docs)", got)
	}
}

func TestExtractRespectsSentenceBreaks(t *testing.T) {
	tok := Tokenizer{EmitSentenceBreaks: true}
	docs := [][]string{
		tok.Tokenize("trade ends. reserves fall"),
		tok.Tokenize("trade ends. reserves fall"),
	}
	stats, err := Extract(docs, ExtractorOptions{MinDocFreq: 2, MaxWords: 3})
	if err != nil {
		t.Fatal(err)
	}
	m := statsByPhrase(stats)
	if _, ok := m["ends reserves"]; ok {
		t.Fatal("n-gram crossed a sentence boundary")
	}
	if _, ok := m["trade ends"]; !ok {
		t.Fatal("'trade ends' should be extracted")
	}
}

func TestExtractMaxWordsCap(t *testing.T) {
	line := "a1 a2 a3 a4 a5 a6 a7 a8"
	docs := tokensOf(line, line, line, line, line)
	stats, err := Extract(docs, ExtractorOptions{MinDocFreq: 5, MaxWords: 6})
	if err != nil {
		t.Fatal(err)
	}
	maxWords := 0
	for _, s := range stats {
		if s.Words > maxWords {
			maxWords = s.Words
		}
	}
	if maxWords != 6 {
		t.Fatalf("longest extracted phrase has %d words, want 6", maxWords)
	}
}

func TestExtractMinWordsFloor(t *testing.T) {
	docs := tokensOf("a b c", "a b c", "a b c")
	stats, err := Extract(docs, ExtractorOptions{MinWords: 2, MinDocFreq: 3, MaxWords: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stats {
		if s.Words < 2 {
			t.Fatalf("unigram %q leaked despite MinWords=2", s.Phrase)
		}
	}
}

func TestExtractDropAllStopwordPhrases(t *testing.T) {
	docs := tokensOf("of the trade", "of the trade", "of the trade", "of the trade", "of the trade")
	stats, err := Extract(docs, ExtractorOptions{MinDocFreq: 5, MaxWords: 2, DropAllStopwordPhrases: true})
	if err != nil {
		t.Fatal(err)
	}
	m := statsByPhrase(stats)
	if _, ok := m["of the"]; ok {
		t.Error("all-stopword phrase 'of the' should be dropped")
	}
	if _, ok := m["the trade"]; !ok {
		t.Error("'the trade' contains a content word and should be kept")
	}
}

func TestExtractMaxPhraseBytes(t *testing.T) {
	long := "verylongtokennumberone verylongtokennumbertwo verylongtokennumberthree"
	docs := tokensOf(long, long, long, long, long)
	stats, err := Extract(docs, ExtractorOptions{MinDocFreq: 5, MaxWords: 3, MaxPhraseBytes: 50})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stats {
		if len(s.Phrase) > 50 {
			t.Fatalf("phrase %q exceeds 50 bytes", s.Phrase)
		}
	}
}

func TestExtractDeterministicOrder(t *testing.T) {
	docs := tokensOf(
		"b a c", "b a c", "b a c",
		"z y", "z y", "z y",
	)
	a, err := Extract(docs, ExtractorOptions{MinDocFreq: 3, MaxWords: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Extract(docs, ExtractorOptions{MinDocFreq: 3, MaxWords: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Extract is not deterministic")
	}
	if !sort.SliceIsSorted(a, func(i, j int) bool {
		if a[i].Words != a[j].Words {
			return a[i].Words < a[j].Words
		}
		return a[i].Phrase < a[j].Phrase
	}) {
		t.Fatal("Extract output is not sorted by (words, phrase)")
	}
}

func TestExtractValidate(t *testing.T) {
	_, err := Extract(nil, ExtractorOptions{MinWords: 4, MaxWords: 2})
	if err == nil {
		t.Fatal("expected error for MinWords > MaxWords")
	}
}

func TestExtractEmptyCorpus(t *testing.T) {
	stats, err := Extract(nil, ExtractorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 0 {
		t.Fatalf("Extract(nil) = %d phrases, want 0", len(stats))
	}
}

// naiveExtract is an O(everything) reference implementation used to verify
// the Apriori-pruned extractor on random corpora.
func naiveExtract(docs [][]string, minDF, maxWords int) map[string][]int {
	found := make(map[string]map[int]struct{})
	for docIdx, tokens := range docs {
		for n := 1; n <= maxWords; n++ {
			for s := 0; s+n <= len(tokens); s++ {
				window := tokens[s : s+n]
				if containsBreak(window) {
					continue
				}
				p := JoinPhrase(window)
				if found[p] == nil {
					found[p] = make(map[int]struct{})
				}
				found[p][docIdx] = struct{}{}
			}
		}
	}
	out := make(map[string][]int)
	for p, set := range found {
		if len(set) < minDF {
			continue
		}
		var list []int
		for d := range set {
			list = append(list, d)
		}
		sort.Ints(list)
		out[p] = list
	}
	return out
}

// Property: the level-wise extractor agrees exactly with the naive one on
// random corpora.
func TestExtractMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		nDocs := 5 + rng.Intn(20)
		vocab := 3 + rng.Intn(8)
		docs := make([][]string, nDocs)
		for i := range docs {
			docLen := 1 + rng.Intn(30)
			toks := make([]string, docLen)
			for j := range toks {
				toks[j] = fmt.Sprintf("w%d", rng.Intn(vocab))
			}
			docs[i] = toks
		}
		minDF := 1 + rng.Intn(4)
		maxWords := 1 + rng.Intn(5)

		want := naiveExtract(docs, minDF, maxWords)
		got, err := Extract(docs, ExtractorOptions{MinDocFreq: minDF, MaxWords: maxWords, MaxPhraseBytes: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		gotMap := make(map[string][]int, len(got))
		for _, s := range got {
			gotMap[s.Phrase] = s.Docs
		}
		if !reflect.DeepEqual(gotMap, want) {
			t.Fatalf("trial %d: extractor disagrees with naive reference\n got: %v\nwant: %v",
				trial, gotMap, want)
		}
	}
}

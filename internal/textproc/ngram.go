package textproc

import (
	"fmt"
	"sort"
)

// ExtractorOptions configures phrase extraction.
type ExtractorOptions struct {
	// MinWords and MaxWords bound phrase length in words. The paper uses
	// 1..6 ("word n-grams of up to 6 words"). Zero values default to 1
	// and 6.
	MinWords int
	MaxWords int
	// MinDocFreq is the minimum number of distinct documents a phrase must
	// occur in to enter P. The paper uses 5 or 10. Zero defaults to 5.
	MinDocFreq int
	// DropAllStopwordPhrases removes n-grams consisting solely of
	// stopwords from P. The interestingness measure already de-prioritizes
	// them, but dropping them shrinks P substantially at no quality cost.
	DropAllStopwordPhrases bool
	// MaxPhraseBytes drops phrases whose canonical string form exceeds
	// this many bytes, mirroring the fixed-width phrase-list restriction
	// of Section 4.2.1 (the paper uses s = 50). Zero defaults to 50.
	MaxPhraseBytes int
}

func (o ExtractorOptions) withDefaults() ExtractorOptions {
	if o.MinWords <= 0 {
		o.MinWords = 1
	}
	if o.MaxWords <= 0 {
		o.MaxWords = 6
	}
	if o.MinDocFreq <= 0 {
		o.MinDocFreq = 5
	}
	if o.MaxPhraseBytes <= 0 {
		o.MaxPhraseBytes = 50
	}
	return o
}

// Validate reports configuration errors that withDefaults cannot repair.
func (o ExtractorOptions) Validate() error {
	o = o.withDefaults()
	if o.MinWords > o.MaxWords {
		return fmt.Errorf("textproc: MinWords (%d) > MaxWords (%d)", o.MinWords, o.MaxWords)
	}
	return nil
}

// PhraseStats describes one extracted phrase.
type PhraseStats struct {
	Phrase  string // canonical space-joined form
	Words   int    // number of words
	DocFreq int    // number of distinct documents containing the phrase
	Docs    []int  // sorted indexes (into the input slice) of those documents
}

// Extract mines the frequent-phrase universe P from a corpus given as one
// token slice per document. SentenceBreak tokens delimit n-gram windows.
//
// The extraction is level-wise (Apriori-style): an n-gram can only reach the
// document-frequency threshold if both its (n-1)-word prefix and suffix do,
// so level n only counts n-grams whose two (n-1)-gram constituents survived
// level n-1. This keeps extraction near-linear in corpus size for realistic
// thresholds instead of materializing every n-gram occurrence.
//
// The result is sorted by (Words, Phrase) so phrase IDs assigned from it are
// deterministic.
func Extract(docs [][]string, opt ExtractorOptions) ([]PhraseStats, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults()

	// frequent[n] holds the set of surviving n-grams after level n,
	// mapping canonical phrase -> sorted doc list.
	frequent := make([]map[string][]int, opt.MaxWords+1)

	// Level 1: count unigram document frequencies.
	frequent[1] = countLevel(docs, 1, nil, opt)

	for n := 2; n <= opt.MaxWords; n++ {
		if len(frequent[n-1]) == 0 {
			frequent[n] = map[string][]int{}
			continue
		}
		frequent[n] = countLevel(docs, n, frequent[n-1], opt)
	}

	var out []PhraseStats
	for n := opt.MinWords; n <= opt.MaxWords; n++ {
		for phrase, docList := range frequent[n] {
			if opt.DropAllStopwordPhrases && AllStopwords(SplitPhrase(phrase)) {
				continue
			}
			if len(phrase) > opt.MaxPhraseBytes {
				continue
			}
			out = append(out, PhraseStats{
				Phrase:  phrase,
				Words:   n,
				DocFreq: len(docList),
				Docs:    docList,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Words != out[j].Words {
			return out[i].Words < out[j].Words
		}
		return out[i].Phrase < out[j].Phrase
	})
	return out, nil
}

// countLevel counts document frequencies of n-grams across docs, constrained
// (for n >= 2) to n-grams whose prefix and suffix (n-1)-grams are keys of
// prev. It returns the n-grams meeting opt.MinDocFreq with their sorted doc
// lists.
//
// Counting is two-pass: the first pass only tallies per-document-distinct
// frequencies (4 bytes per candidate), the second collects doc lists for
// the survivors. On corpora with tens of millions of token windows this
// keeps peak memory proportional to the candidate count rather than the
// occurrence count.
func countLevel(docs [][]string, n int, prev map[string][]int, opt ExtractorOptions) map[string][]int {
	type docCount struct {
		lastDoc int32
		count   int32
	}
	counts := make(map[string]*docCount)

	scan := func(visit func(phrase string, docIdx int)) {
		for docIdx, tokens := range docs {
			for start := 0; start+n <= len(tokens); start++ {
				window := tokens[start : start+n]
				if containsBreak(window) {
					continue
				}
				if prev != nil {
					// Apriori constraint: prefix and suffix
					// (n-1)-grams must both be frequent.
					if _, ok := prev[JoinPhrase(window[:n-1])]; !ok {
						continue
					}
					if _, ok := prev[JoinPhrase(window[1:])]; !ok {
						continue
					}
				}
				visit(JoinPhrase(window), docIdx)
			}
		}
	}

	// Pass 1: document frequencies.
	scan(func(phrase string, docIdx int) {
		dc := counts[phrase]
		if dc == nil {
			counts[phrase] = &docCount{lastDoc: int32(docIdx), count: 1}
			return
		}
		if dc.lastDoc != int32(docIdx) {
			dc.lastDoc = int32(docIdx)
			dc.count++
		}
	})
	survivors := make(map[string][]int)
	for phrase, dc := range counts {
		if int(dc.count) >= opt.MinDocFreq {
			survivors[phrase] = make([]int, 0, dc.count)
		}
	}
	counts = nil

	// Pass 2: doc lists for survivors only. Lists come out sorted because
	// documents are scanned in increasing order.
	scan(func(phrase string, docIdx int) {
		list, ok := survivors[phrase]
		if !ok {
			return
		}
		if n := len(list); n > 0 && list[n-1] == docIdx {
			return
		}
		survivors[phrase] = append(list, docIdx)
	})
	return survivors
}

// containsBreak reports whether the window crosses a sentence boundary.
func containsBreak(window []string) bool {
	for _, t := range window {
		if t == SentenceBreak {
			return true
		}
	}
	return false
}

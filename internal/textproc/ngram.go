package textproc

import (
	"fmt"
	"sort"

	"phrasemine/internal/parallel"
)

// DefaultMinDocFreq is the document-frequency threshold a zero
// ExtractorOptions.MinDocFreq selects (the paper's setting). Exported so
// layers that apply the threshold themselves — the sharded engine filters
// globally over per-segment threshold-1 extractions — share one default.
const DefaultMinDocFreq = 5

// ExtractorOptions configures phrase extraction.
type ExtractorOptions struct {
	// MinWords and MaxWords bound phrase length in words. The paper uses
	// 1..6 ("word n-grams of up to 6 words"). Zero values default to 1
	// and 6.
	MinWords int
	MaxWords int
	// MinDocFreq is the minimum number of distinct documents a phrase must
	// occur in to enter P. The paper uses 5 or 10. Zero defaults to 5.
	MinDocFreq int
	// DropAllStopwordPhrases removes n-grams consisting solely of
	// stopwords from P. The interestingness measure already de-prioritizes
	// them, but dropping them shrinks P substantially at no quality cost.
	DropAllStopwordPhrases bool
	// MaxPhraseBytes drops phrases whose canonical string form exceeds
	// this many bytes, mirroring the fixed-width phrase-list restriction
	// of Section 4.2.1 (the paper uses s = 50). Zero defaults to 50.
	MaxPhraseBytes int
	// Workers bounds extraction concurrency. Values <= 1 (including the
	// zero value) select the sequential path; larger values shard the
	// document range across that many counting workers. The parallel path
	// produces output identical to the sequential one: shards are
	// contiguous document ranges, per-shard counts merge by addition, and
	// doc lists concatenate in shard order, preserving sortedness.
	Workers int
	// Shards is the number of document shards the parallel path counts
	// over. Zero defaults to 4*Workers (small multiples smooth out skew
	// between long- and short-document regions of the corpus).
	Shards int
}

func (o ExtractorOptions) withDefaults() ExtractorOptions {
	if o.MinWords <= 0 {
		o.MinWords = 1
	}
	if o.MaxWords <= 0 {
		o.MaxWords = 6
	}
	if o.MinDocFreq <= 0 {
		o.MinDocFreq = DefaultMinDocFreq
	}
	if o.MaxPhraseBytes <= 0 {
		o.MaxPhraseBytes = 50
	}
	if o.Shards <= 0 {
		o.Shards = 4 * o.Workers
	}
	return o
}

// Validate reports configuration errors that withDefaults cannot repair.
func (o ExtractorOptions) Validate() error {
	o = o.withDefaults()
	if o.MinWords > o.MaxWords {
		return fmt.Errorf("textproc: MinWords (%d) > MaxWords (%d)", o.MinWords, o.MaxWords)
	}
	return nil
}

// PhraseStats describes one extracted phrase.
type PhraseStats struct {
	Phrase  string // canonical space-joined form
	Words   int    // number of words
	DocFreq int    // number of distinct documents containing the phrase
	Docs    []int  // sorted indexes (into the input slice) of those documents
}

// Extract mines the frequent-phrase universe P from a corpus given as one
// token slice per document. SentenceBreak tokens delimit n-gram windows.
//
// The extraction is level-wise (Apriori-style): an n-gram can only reach the
// document-frequency threshold if both its (n-1)-word prefix and suffix do,
// so level n only counts n-grams whose two (n-1)-gram constituents survived
// level n-1. This keeps extraction near-linear in corpus size for realistic
// thresholds instead of materializing every n-gram occurrence.
//
// The result is sorted by (Words, Phrase) so phrase IDs assigned from it are
// deterministic.
func Extract(docs [][]string, opt ExtractorOptions) ([]PhraseStats, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults()

	// frequent[n] holds the set of surviving n-grams after level n,
	// mapping canonical phrase -> sorted doc list.
	frequent := make([]map[string][]int, opt.MaxWords+1)

	// Level 1: count unigram document frequencies.
	frequent[1] = countLevel(docs, 1, nil, opt)

	for n := 2; n <= opt.MaxWords; n++ {
		if len(frequent[n-1]) == 0 {
			frequent[n] = map[string][]int{}
			continue
		}
		frequent[n] = countLevel(docs, n, frequent[n-1], opt)
	}

	var out []PhraseStats
	for n := opt.MinWords; n <= opt.MaxWords; n++ {
		for phrase, docList := range frequent[n] {
			if opt.DropAllStopwordPhrases && AllStopwords(SplitPhrase(phrase)) {
				continue
			}
			if len(phrase) > opt.MaxPhraseBytes {
				continue
			}
			out = append(out, PhraseStats{
				Phrase:  phrase,
				Words:   n,
				DocFreq: len(docList),
				Docs:    docList,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Words != out[j].Words {
			return out[i].Words < out[j].Words
		}
		return out[i].Phrase < out[j].Phrase
	})
	return out, nil
}

// docCount tracks a candidate phrase's per-document-distinct frequency
// during pass 1 (lastDoc dedups repeat occurrences within one document).
type docCount struct {
	lastDoc int32
	count   int32
}

// scanRange visits every candidate n-gram occurrence of docs[r.Lo:r.Hi],
// constrained (for n >= 2) to n-grams whose prefix and suffix (n-1)-grams
// are keys of prev. docIdx passed to visit is the global document index.
func scanRange(docs [][]string, r parallel.Range, n int, prev map[string][]int, visit func(phrase string, docIdx int)) {
	for docIdx := r.Lo; docIdx < r.Hi; docIdx++ {
		tokens := docs[docIdx]
		for start := 0; start+n <= len(tokens); start++ {
			window := tokens[start : start+n]
			if containsBreak(window) {
				continue
			}
			if prev != nil {
				// Apriori constraint: prefix and suffix
				// (n-1)-grams must both be frequent.
				if _, ok := prev[JoinPhrase(window[:n-1])]; !ok {
					continue
				}
				if _, ok := prev[JoinPhrase(window[1:])]; !ok {
					continue
				}
			}
			visit(JoinPhrase(window), docIdx)
		}
	}
}

// countRange runs pass 1 over one document range: per-document-distinct
// frequencies of every candidate n-gram occurring in it.
func countRange(docs [][]string, r parallel.Range, n int, prev map[string][]int) map[string]*docCount {
	counts := make(map[string]*docCount)
	scanRange(docs, r, n, prev, func(phrase string, docIdx int) {
		dc := counts[phrase]
		if dc == nil {
			counts[phrase] = &docCount{lastDoc: int32(docIdx), count: 1}
			return
		}
		if dc.lastDoc != int32(docIdx) {
			dc.lastDoc = int32(docIdx)
			dc.count++
		}
	})
	return counts
}

// collectRange runs pass 2 over one document range: sorted doc lists for the
// phrases present in survivors (read-only here, so shards may share it).
func collectRange(docs [][]string, r parallel.Range, n int, prev map[string][]int, survivors map[string][]int) map[string][]int {
	lists := make(map[string][]int)
	scanRange(docs, r, n, prev, func(phrase string, docIdx int) {
		if _, ok := survivors[phrase]; !ok {
			return
		}
		list := lists[phrase]
		if n := len(list); n > 0 && list[n-1] == docIdx {
			return
		}
		lists[phrase] = append(list, docIdx)
	})
	return lists
}

// countLevel counts document frequencies of n-grams across docs, constrained
// (for n >= 2) to n-grams whose prefix and suffix (n-1)-grams are keys of
// prev. It returns the n-grams meeting opt.MinDocFreq with their sorted doc
// lists.
//
// Counting is two-pass: the first pass only tallies per-document-distinct
// frequencies (4 bytes per candidate), the second collects doc lists for
// the survivors. On corpora with tens of millions of token windows this
// keeps peak memory proportional to the candidate count rather than the
// occurrence count.
//
// With opt.Workers > 1 both passes shard the document range across workers
// and merge deterministically: pass-1 counts add up (shards partition the
// documents, so per-document dedup stays local), and pass-2 doc lists
// concatenate in shard order, which preserves ascending document order.
func countLevel(docs [][]string, n int, prev map[string][]int, opt ExtractorOptions) map[string][]int {
	full := parallel.Range{Lo: 0, Hi: len(docs)}
	if opt.Workers <= 1 {
		counts := countRange(docs, full, n, prev)
		survivors := make(map[string][]int)
		for phrase, dc := range counts {
			if int(dc.count) >= opt.MinDocFreq {
				survivors[phrase] = make([]int, 0, dc.count)
			}
		}
		counts = nil
		// Append directly into the pre-sized lists (no per-shard staging
		// maps on the sequential path).
		scanRange(docs, full, n, prev, func(phrase string, docIdx int) {
			list, ok := survivors[phrase]
			if !ok {
				return
			}
			if n := len(list); n > 0 && list[n-1] == docIdx {
				return
			}
			survivors[phrase] = append(list, docIdx)
		})
		return survivors
	}

	ranges := parallel.Shards(len(docs), opt.Shards)

	// Pass 1, sharded: per-shard distinct-document counts, merged by
	// addition (document ranges are disjoint).
	partials := make([]map[string]*docCount, len(ranges))
	parallel.ForEachOf(ranges, opt.Workers, func(s int, r parallel.Range) {
		partials[s] = countRange(docs, r, n, prev)
	})
	total := make(map[string]int)
	for _, part := range partials {
		for phrase, dc := range part {
			total[phrase] += int(dc.count)
		}
	}
	survivors := make(map[string][]int)
	for phrase, count := range total {
		if count >= opt.MinDocFreq {
			survivors[phrase] = make([]int, 0, count)
		}
	}
	partials, total = nil, nil

	// Pass 2, sharded: per-shard doc lists for survivors, concatenated in
	// shard order so every list stays sorted.
	collected := make([]map[string][]int, len(ranges))
	parallel.ForEachOf(ranges, opt.Workers, func(s int, r parallel.Range) {
		collected[s] = collectRange(docs, r, n, prev, survivors)
	})
	for _, part := range collected {
		for phrase, list := range part {
			survivors[phrase] = append(survivors[phrase], list...)
		}
	}
	return survivors
}

// containsBreak reports whether the window crosses a sentence boundary.
func containsBreak(window []string) bool {
	for _, t := range window {
		if t == SentenceBreak {
			return true
		}
	}
	return false
}

package textproc

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// randomDocs builds a deterministic pseudo-random corpus with enough
// repetition for n-grams to clear document-frequency thresholds.
func randomDocs(numDocs, vocab, docLen int, seed int64) [][]string {
	rng := rand.New(rand.NewSource(seed))
	docs := make([][]string, numDocs)
	for d := range docs {
		tokens := make([]string, 0, docLen)
		for len(tokens) < docLen {
			if rng.Intn(12) == 0 {
				tokens = append(tokens, SentenceBreak)
				continue
			}
			tokens = append(tokens, fmt.Sprintf("w%d", rng.Intn(vocab)))
		}
		docs[d] = tokens
	}
	return docs
}

// TestExtractParallelMatchesSequential asserts the central determinism
// contract: sharded parallel extraction returns exactly the sequential
// result — same phrases, same doc lists, same order — at every worker and
// shard count.
func TestExtractParallelMatchesSequential(t *testing.T) {
	docs := randomDocs(240, 60, 90, 7)
	base := ExtractorOptions{MinWords: 1, MaxWords: 5, MinDocFreq: 3}
	want, err := Extract(docs, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("sequential extraction found no phrases; corpus too sparse for the test")
	}
	for _, tc := range []struct{ workers, shards int }{
		{2, 0}, {3, 5}, {4, 0}, {4, 1}, {8, 64}, {16, 3},
	} {
		opt := base
		opt.Workers = tc.workers
		opt.Shards = tc.shards
		got, err := Extract(docs, opt)
		if err != nil {
			t.Fatalf("workers=%d shards=%d: %v", tc.workers, tc.shards, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d shards=%d: parallel extraction diverges from sequential (%d vs %d phrases)",
				tc.workers, tc.shards, len(got), len(want))
		}
	}
}

// TestExtractParallelMoreShardsThanDocs covers the degenerate sharding
// cases: more shards than documents, single documents, empty corpus.
func TestExtractParallelDegenerateShapes(t *testing.T) {
	opt := ExtractorOptions{MinDocFreq: 1, Workers: 8, Shards: 100}
	docs := [][]string{{"a", "b", "a", "b"}}
	got, err := Extract(docs, opt)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Extract(docs, ExtractorOptions{MinDocFreq: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, seq) {
		t.Errorf("single-doc parallel extraction diverges from sequential")
	}

	if _, err := Extract(nil, opt); err != nil {
		t.Fatalf("empty corpus: %v", err)
	}
}

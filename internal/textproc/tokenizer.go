// Package textproc implements the text-processing substrate of phrasemine:
// tokenization, normalization, stopword handling and n-gram phrase
// extraction. It defines the phrase universe P exactly as Section 2 of the
// paper does: word n-grams of up to MaxWords words that occur in at least
// MinDocFreq documents of the corpus.
package textproc

import (
	"strings"
	"unicode"
)

// SentenceBreak is the pseudo-token emitted by the Tokenizer at sentence
// boundaries. Phrase extraction never forms n-grams across it. It contains a
// character that the tokenizer can never emit as part of a word, so it cannot
// collide with real tokens.
const SentenceBreak = "\x00"

// Tokenizer splits raw text into normalized word tokens. The zero value is a
// usable tokenizer with default settings (lowercasing on, stopwords kept,
// tokens of 1..64 bytes).
//
// Normalization is intentionally simple and deterministic: text is lowered,
// split on any rune that is not a letter, digit, apostrophe or hyphen, and
// inner apostrophes/hyphens are kept ("taiwan's", "real-time"). Sentence
// punctuation ('.', '!', '?', ';') emits a SentenceBreak pseudo-token when
// EmitSentenceBreaks is set.
type Tokenizer struct {
	// KeepCase disables lowercasing when true.
	KeepCase bool
	// DropStopwords removes stopwords from the token stream entirely.
	// Phrase mining typically keeps them (the interestingness measure's
	// global-frequency normalization de-prioritizes stopword phrases, as
	// the paper's Section 1 argues), so the default is false.
	DropStopwords bool
	// EmitSentenceBreaks inserts SentenceBreak tokens at sentence-ending
	// punctuation so that phrase extraction does not cross sentences.
	EmitSentenceBreaks bool
	// MinTokenLen and MaxTokenLen bound the byte length of emitted tokens.
	// Zero values mean 1 and 64 respectively.
	MinTokenLen int
	MaxTokenLen int
}

// isWordRune reports whether r can be part of a token.
func isWordRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '\'' || r == '-'
}

// isSentencePunct reports whether r terminates a sentence.
func isSentencePunct(r rune) bool {
	return r == '.' || r == '!' || r == '?' || r == ';'
}

// limits returns the effective token length bounds.
func (t *Tokenizer) limits() (int, int) {
	lo, hi := t.MinTokenLen, t.MaxTokenLen
	if lo <= 0 {
		lo = 1
	}
	if hi <= 0 {
		hi = 64
	}
	return lo, hi
}

// Tokenize splits text into tokens under the tokenizer's settings.
func (t *Tokenizer) Tokenize(text string) []string {
	out := make([]string, 0, len(text)/6+1)
	return t.AppendTokens(out, text)
}

// AppendTokens appends the tokens of text to dst and returns the extended
// slice. It is the allocation-friendly form of Tokenize.
func (t *Tokenizer) AppendTokens(dst []string, text string) []string {
	lo, hi := t.limits()
	var b strings.Builder
	flush := func() {
		if b.Len() == 0 {
			return
		}
		tok := trimEdges(b.String())
		b.Reset()
		if len(tok) < lo || len(tok) > hi {
			return
		}
		if t.DropStopwords && IsStopword(tok) {
			return
		}
		dst = append(dst, tok)
	}
	for _, r := range text {
		switch {
		case isWordRune(r):
			if !t.KeepCase {
				r = unicode.ToLower(r)
			}
			b.WriteRune(r)
		case isSentencePunct(r):
			flush()
			if t.EmitSentenceBreaks {
				// Never lead with a break and never emit two in
				// a row: breaks only separate real tokens.
				if n := len(dst); n > 0 && dst[n-1] != SentenceBreak {
					dst = append(dst, SentenceBreak)
				}
			}
		default:
			flush()
		}
	}
	flush()
	return dst
}

// trimEdges strips leading/trailing apostrophes and hyphens that the
// character-class split can leave on tokens like "'quoted'" or "-dash".
func trimEdges(s string) string {
	return strings.Trim(s, "'-")
}

// JoinPhrase renders a token n-gram as its canonical phrase string: tokens
// joined by single spaces. All phrase-keyed structures in this repository use
// this representation.
func JoinPhrase(tokens []string) string {
	return strings.Join(tokens, " ")
}

// SplitPhrase is the inverse of JoinPhrase.
func SplitPhrase(phrase string) []string {
	if phrase == "" {
		return nil
	}
	return strings.Split(phrase, " ")
}

// PhraseLen reports the number of words in a canonical phrase string without
// allocating.
func PhraseLen(phrase string) int {
	if phrase == "" {
		return 0
	}
	return strings.Count(phrase, " ") + 1
}

package textproc

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	var tok Tokenizer
	got := tok.Tokenize("The Quick, Brown FOX!")
	want := []string{"the", "quick", "brown", "fox"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeKeepsInnerApostropheAndHyphen(t *testing.T) {
	var tok Tokenizer
	got := tok.Tokenize("taiwan's real-time exchange")
	want := []string{"taiwan's", "real-time", "exchange"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeTrimsEdgePunctuation(t *testing.T) {
	var tok Tokenizer
	got := tok.Tokenize("'quoted' -dash- trailing'")
	want := []string{"quoted", "dash", "trailing"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeKeepCase(t *testing.T) {
	tok := Tokenizer{KeepCase: true}
	got := tok.Tokenize("IBM Research")
	want := []string{"IBM", "Research"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeDropStopwords(t *testing.T) {
	tok := Tokenizer{DropStopwords: true}
	got := tok.Tokenize("the minister of trade and reserves")
	want := []string{"minister", "trade", "reserves"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeSentenceBreaks(t *testing.T) {
	tok := Tokenizer{EmitSentenceBreaks: true}
	got := tok.Tokenize("First sentence. Second sentence! Third?")
	want := []string{"first", "sentence", SentenceBreak, "second", "sentence", SentenceBreak, "third", SentenceBreak}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeNoDuplicateSentenceBreaks(t *testing.T) {
	tok := Tokenizer{EmitSentenceBreaks: true}
	got := tok.Tokenize("End... start")
	want := []string{"end", SentenceBreak, "start"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeLeadingPunctNoBreakToken(t *testing.T) {
	tok := Tokenizer{EmitSentenceBreaks: true}
	got := tok.Tokenize("...hello")
	want := []string{"hello"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeLengthBounds(t *testing.T) {
	tok := Tokenizer{MinTokenLen: 3, MaxTokenLen: 5}
	got := tok.Tokenize("a ab abc abcd abcde abcdef")
	want := []string{"abc", "abcd", "abcde"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeEmpty(t *testing.T) {
	var tok Tokenizer
	if got := tok.Tokenize(""); len(got) != 0 {
		t.Fatalf("Tokenize(\"\") = %v, want empty", got)
	}
	if got := tok.Tokenize("  ,.!  "); len(got) != 0 {
		t.Fatalf("Tokenize(punct only) = %v, want empty", got)
	}
}

func TestTokenizeUnicode(t *testing.T) {
	var tok Tokenizer
	got := tok.Tokenize("Großhandel naïve café 東京")
	want := []string{"großhandel", "naïve", "café", "東京"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeNumbers(t *testing.T) {
	var tok Tokenizer
	got := tok.Tokenize("q3 1997 revenue grew 21578 units")
	want := []string{"q3", "1997", "revenue", "grew", "21578", "units"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

// Property: tokens never contain separator characters, are within length
// bounds, and are lowercase when KeepCase is false.
func TestTokenizePropertyClean(t *testing.T) {
	var tok Tokenizer
	f := func(s string) bool {
		for _, w := range tok.Tokenize(s) {
			if w == "" || len(w) > 64 {
				return false
			}
			if strings.ContainsAny(w, " \t\n.,!?;") {
				return false
			}
			if w != strings.ToLower(w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: tokenization is idempotent — re-tokenizing the joined token
// stream yields the same tokens.
func TestTokenizePropertyIdempotent(t *testing.T) {
	var tok Tokenizer
	f := func(s string) bool {
		first := tok.Tokenize(s)
		second := tok.Tokenize(strings.Join(first, " "))
		return reflect.DeepEqual(first, second)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAppendTokensReusesSlice(t *testing.T) {
	var tok Tokenizer
	buf := make([]string, 0, 16)
	out := tok.AppendTokens(buf, "one two three")
	if len(out) != 3 {
		t.Fatalf("AppendTokens len = %d, want 3", len(out))
	}
	if cap(out) != 16 {
		t.Fatalf("AppendTokens reallocated: cap = %d, want 16", cap(out))
	}
}

func TestJoinSplitPhraseRoundTrip(t *testing.T) {
	cases := [][]string{
		{"economic", "minister"},
		{"one"},
		{"a", "b", "c", "d", "e", "f"},
	}
	for _, c := range cases {
		if got := SplitPhrase(JoinPhrase(c)); !reflect.DeepEqual(got, c) {
			t.Errorf("round trip of %v = %v", c, got)
		}
	}
	if SplitPhrase("") != nil {
		t.Error("SplitPhrase(\"\") should be nil")
	}
}

func TestPhraseLen(t *testing.T) {
	cases := map[string]int{
		"":                  0,
		"one":               1,
		"economic minister": 2,
		"a b c d e f":       6,
	}
	for phrase, want := range cases {
		if got := PhraseLen(phrase); got != want {
			t.Errorf("PhraseLen(%q) = %d, want %d", phrase, got, want)
		}
	}
}

func TestIsStopword(t *testing.T) {
	for _, w := range []string{"the", "and", "of", "won't"} {
		if !IsStopword(w) {
			t.Errorf("IsStopword(%q) = false, want true", w)
		}
	}
	for _, w := range []string{"minister", "trade", "", "THE"} {
		if IsStopword(w) {
			t.Errorf("IsStopword(%q) = true, want false", w)
		}
	}
}

func TestAllStopwords(t *testing.T) {
	if !AllStopwords([]string{"of", "the"}) {
		t.Error("AllStopwords([of the]) = false")
	}
	if AllStopwords([]string{"of", "trade"}) {
		t.Error("AllStopwords([of trade]) = true")
	}
	if !AllStopwords(nil) {
		t.Error("AllStopwords(nil) = false, want vacuous true")
	}
}

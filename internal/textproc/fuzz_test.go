package textproc

import (
	"reflect"
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzTokenize checks the tokenizer's structural invariants on arbitrary
// input: emitted tokens respect the byte-length bounds, contain no
// whitespace or sentence punctuation, are valid UTF-8 for valid input,
// lowercase under default settings, and never collide with the
// SentenceBreak pseudo-token. Tokenization must also be deterministic.
func FuzzTokenize(f *testing.F) {
	f.Add("The quick brown fox jumps over the lazy dog.")
	f.Add("taiwan's real-time trade-reserves, 1997; OK?")
	f.Add("")
	f.Add("!!!...;;;")
	f.Add("a\x00b\tc\nd")
	f.Add("naïve café — ĳsberg ΣΙΓΜΑ")
	f.Add(strings.Repeat("verylongtoken", 10) + " end")
	f.Fuzz(func(t *testing.T, text string) {
		tok := Tokenizer{EmitSentenceBreaks: true}
		tokens := tok.Tokenize(text)
		again := tok.Tokenize(text)
		if !reflect.DeepEqual(tokens, again) {
			t.Fatalf("non-deterministic tokenization of %q", text)
		}
		for i, w := range tokens {
			if w == SentenceBreak {
				continue
			}
			if len(w) < 1 || len(w) > 64 {
				t.Fatalf("token %d %q has %d bytes, want 1..64", i, w, len(w))
			}
			if strings.ContainsAny(w, " \t\n.!?;") {
				t.Fatalf("token %d %q contains separator bytes", i, w)
			}
			if utf8.ValidString(text) && !utf8.ValidString(w) {
				t.Fatalf("token %d %q is invalid UTF-8 from valid input", i, w)
			}
			if w != strings.ToLower(w) {
				t.Fatalf("token %d %q not lowercased", i, w)
			}
		}
	})
}

// FuzzExtract feeds fuzzer-shaped corpora through phrase extraction and
// checks the output invariants the rest of the system relies on: phrases
// within the configured word bounds, document lists sorted, strictly
// in-range and duplicate-free, DocFreq consistent with the threshold, and
// the parallel path identical to the sequential one.
func FuzzExtract(f *testing.F) {
	f.Add("the cat sat on the mat. the cat sat.", uint8(2), uint8(3))
	f.Add("a b a b a b c", uint8(1), uint8(1))
	f.Add("x", uint8(3), uint8(2))
	f.Add("one two three four five six seven", uint8(4), uint8(1))
	f.Fuzz(func(t *testing.T, text string, maxWords, minDF uint8) {
		opt := ExtractorOptions{
			MinWords:   1,
			MaxWords:   int(maxWords%6) + 1,
			MinDocFreq: int(minDF%4) + 1,
		}
		// Split the fuzz input into a few documents and tokenize each.
		tok := Tokenizer{EmitSentenceBreaks: true}
		var docs [][]string
		for _, chunk := range strings.Split(text, "|") {
			docs = append(docs, tok.Tokenize(chunk))
		}

		seq, err := Extract(docs, opt)
		if err != nil {
			t.Fatalf("sequential Extract: %v", err)
		}
		popt := opt
		popt.Workers = 4
		popt.Shards = 3
		par, err := Extract(docs, popt)
		if err != nil {
			t.Fatalf("parallel Extract: %v", err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("parallel extraction diverges from sequential on %q", text)
		}

		for _, p := range seq {
			words := SplitPhrase(p.Phrase)
			if len(words) < opt.MinWords || len(words) > opt.MaxWords {
				t.Fatalf("phrase %q has %d words outside [%d,%d]", p.Phrase, len(words), opt.MinWords, opt.MaxWords)
			}
			if p.Words != len(words) {
				t.Fatalf("phrase %q: Words=%d but %d words", p.Phrase, p.Words, len(words))
			}
			if p.DocFreq < opt.MinDocFreq {
				t.Fatalf("phrase %q: DocFreq %d below threshold %d", p.Phrase, p.DocFreq, opt.MinDocFreq)
			}
			if p.DocFreq != len(p.Docs) {
				t.Fatalf("phrase %q: DocFreq %d != len(Docs) %d", p.Phrase, p.DocFreq, len(p.Docs))
			}
			for i, d := range p.Docs {
				if d < 0 || d >= len(docs) {
					t.Fatalf("phrase %q: doc index %d out of range [0,%d)", p.Phrase, d, len(docs))
				}
				if i > 0 && p.Docs[i-1] >= d {
					t.Fatalf("phrase %q: doc list not strictly ascending at %d: %v", p.Phrase, i, p.Docs)
				}
			}
		}
	})
}

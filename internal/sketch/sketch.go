// Package sketch provides the count-min sketch behind the live-tail
// serving layer: a fixed-size array of counters that answers "how often
// was this key added?" with a one-sided error — estimates never
// undercount, and overcount by at most an additive term proportional to
// the total stream weight divided by the sketch width. The conservative
// update variant tightens the overcount in practice without weakening
// either guarantee, and Rotating slices a sketch into fixed time periods
// so windowed counts ("the last hour") can be served from a ring of
// period sketches.
//
// Hashing is deterministic (fixed seeds): the same key stream produces
// the same sketch on every run, which the difftest equivalence harness
// relies on.
package sketch

import (
	"fmt"
	"math"
)

// CountMin is a count-min sketch: depth rows of width counters, each row
// observing every key through an independent hash. Estimate returns the
// minimum counter across rows, so it never undercounts; with the classic
// parameters the overcount exceeds ErrorBound with probability at most
// exp(-depth).
//
// CountMin is not safe for concurrent mutation; the live tail guards it
// with the miner's write lock.
type CountMin struct {
	width, depth int
	// rows holds depth*width counters, row-major.
	rows []uint64
	// total is the summed weight of every Add — the N of the ε·N error
	// bound.
	total uint64
	// conservative selects conservative update: each Add raises only the
	// counters that would otherwise fall below the new lower bound,
	// shrinking collisions' contributions without breaking the
	// never-undercount guarantee.
	conservative bool
}

// New creates a plain count-min sketch with the given dimensions.
func New(width, depth int) (*CountMin, error) {
	return newSketch(width, depth, false)
}

// NewConservative creates a conservative-update count-min sketch: same
// guarantees as New, tighter estimates under skewed streams.
func NewConservative(width, depth int) (*CountMin, error) {
	return newSketch(width, depth, true)
}

func newSketch(width, depth int, conservative bool) (*CountMin, error) {
	if width < 1 {
		return nil, fmt.Errorf("sketch: width must be positive, got %d", width)
	}
	if depth < 1 {
		return nil, fmt.Errorf("sketch: depth must be positive, got %d", depth)
	}
	return &CountMin{
		width:        width,
		depth:        depth,
		rows:         make([]uint64, width*depth),
		conservative: conservative,
	}, nil
}

// Width reports the per-row counter count.
func (s *CountMin) Width() int { return s.width }

// Depth reports the row count.
func (s *CountMin) Depth() int { return s.depth }

// Total reports the summed weight of every Add since the last Reset.
func (s *CountMin) Total() uint64 { return s.total }

// Bytes reports the sketch's counter-array footprint.
func (s *CountMin) Bytes() int64 { return int64(len(s.rows)) * 8 }

// Add records n occurrences of the key.
func (s *CountMin) Add(key string, n uint64) {
	s.AddHash(HashKey(key), n)
}

// AddHash is Add for a pre-hashed key (see HashKey and PairHash) — the
// live tail hashes each feature and phrase once per document and derives
// every pair's hash by mixing, instead of re-hashing the concatenated
// pair string per sketch row.
func (s *CountMin) AddHash(h uint64, n uint64) {
	if n == 0 {
		return
	}
	s.total += n
	if !s.conservative {
		for d := 0; d < s.depth; d++ {
			s.rows[s.slot(h, d)] += n
		}
		return
	}
	// Conservative update: the key's true count is at most
	// min(counters)+n, so no counter needs to exceed that.
	est := s.estimateHash(h)
	target := est + n
	for d := 0; d < s.depth; d++ {
		if i := s.slot(h, d); s.rows[i] < target {
			s.rows[i] = target
		}
	}
}

// Estimate returns an upper bound on the key's added weight: never below
// the true count, above it by more than ErrorBound with probability at
// most exp(-depth).
func (s *CountMin) Estimate(key string) uint64 {
	return s.estimateHash(HashKey(key))
}

// EstimateHash is Estimate for a pre-hashed key.
func (s *CountMin) EstimateHash(h uint64) uint64 {
	return s.estimateHash(h)
}

func (s *CountMin) estimateHash(h uint64) uint64 {
	min := s.rows[s.slot(h, 0)]
	for d := 1; d < s.depth; d++ {
		if c := s.rows[s.slot(h, d)]; c < min {
			min = c
		}
	}
	return min
}

// ErrorBound is the additive overcount bound ε·N with ε = e/width and N
// the total added weight: Estimate exceeds the true count by more than
// this with probability at most exp(-depth). Grows with the stream, so
// callers compacting the tail reset the sketch to re-tighten it.
func (s *CountMin) ErrorBound() uint64 {
	return uint64(math.Ceil(math.E * float64(s.total) / float64(s.width)))
}

// Reset zeroes every counter and the total.
func (s *CountMin) Reset() {
	clear(s.rows)
	s.total = 0
}

// slot maps a key hash to row d's counter index. Kirsch-Mitzenmacher:
// d pairwise-independent positions from two halves of one 64-bit hash.
func (s *CountMin) slot(h uint64, d int) int {
	h1 := uint32(h)
	h2 := uint32(h>>32) | 1 // odd, so successive rows never collapse
	return d*s.width + int((h1+uint32(d)*h2)%uint32(s.width))
}

// HashKey hashes a key for AddHash/EstimateHash: FNV-1a 64 finished with
// an avalanche mix so both 32-bit halves are usable as independent hashes.
func HashKey(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return mix64(h)
}

// PairHash combines two key hashes into one pair hash, so (feature,
// phrase) co-occurrence keys cost two string hashes per document instead
// of one per pair. Asymmetric in its arguments: PairHash(a, b) and
// PairHash(b, a) are distinct keys.
func PairHash(a, b uint64) uint64 {
	return mix64(a ^ (b*0x9e3779b97f4a7c15 + 0x7f4a7c159e3779b9))
}

// mix64 is the splitmix64 finalizer: full avalanche, bijective.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

package sketch

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

func TestNewRejectsBadDimensions(t *testing.T) {
	for _, tc := range []struct{ w, d int }{{0, 4}, {-1, 4}, {16, 0}, {16, -2}} {
		if _, err := New(tc.w, tc.d); err == nil {
			t.Errorf("New(%d, %d): want error", tc.w, tc.d)
		}
		if _, err := NewConservative(tc.w, tc.d); err == nil {
			t.Errorf("NewConservative(%d, %d): want error", tc.w, tc.d)
		}
	}
}

func TestExactWhenSparse(t *testing.T) {
	// Far fewer keys than width: every estimate should be exact for both
	// variants (collisions are possible but this fixed key set has none —
	// the test is deterministic).
	for _, conservative := range []bool{false, true} {
		s, err := newSketch(1024, 4, conservative)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			s.Add(fmt.Sprintf("key-%d", i), uint64(i+1))
		}
		for i := 0; i < 20; i++ {
			if got, want := s.Estimate(fmt.Sprintf("key-%d", i)), uint64(i+1); got != want {
				t.Errorf("conservative=%t: Estimate(key-%d) = %d, want %d", conservative, i, got, want)
			}
		}
		if got := s.Estimate("never-added"); got != 0 {
			t.Errorf("conservative=%t: Estimate(never-added) = %d, want 0", conservative, got)
		}
	}
}

// TestNeverUndercounts is the sketch's hard guarantee: under heavy
// deliberate collision pressure (width 32, thousands of keys) every
// estimate stays >= the true count, and within the ErrorBound of it save
// for the documented exp(-depth) tail — checked exactly because the
// stream is deterministic.
func TestNeverUndercounts(t *testing.T) {
	for _, conservative := range []bool{false, true} {
		s, err := newSketch(32, 4, conservative)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		truth := make(map[string]uint64)
		for i := 0; i < 5000; i++ {
			key := fmt.Sprintf("key-%d", rng.Intn(400))
			n := uint64(rng.Intn(3) + 1)
			s.Add(key, n)
			truth[key] += n
		}
		var over int
		bound := s.ErrorBound()
		for key, want := range truth {
			got := s.Estimate(key)
			if got < want {
				t.Fatalf("conservative=%t: Estimate(%s) = %d undercounts true %d", conservative, key, got, want)
			}
			if got > want+bound {
				over++
			}
		}
		// Pr[overshoot] <= exp(-4) ~ 1.8% per key; this fixed stream keeps
		// well under 10% of the 400 keys.
		if over > len(truth)/10 {
			t.Errorf("conservative=%t: %d/%d estimates exceed the error bound %d", conservative, over, len(truth), bound)
		}
	}
}

// TestConservativeNoLooser pins the point of the conservative variant:
// on the same stream its estimates are never above the plain sketch's.
func TestConservativeNoLooser(t *testing.T) {
	plain, _ := New(64, 4)
	cons, _ := NewConservative(64, 4)
	rng := rand.New(rand.NewSource(11))
	keys := make(map[string]bool)
	for i := 0; i < 3000; i++ {
		key := fmt.Sprintf("key-%d", rng.Intn(500))
		plain.Add(key, 1)
		cons.Add(key, 1)
		keys[key] = true
	}
	for key := range keys {
		if c, p := cons.Estimate(key), plain.Estimate(key); c > p {
			t.Fatalf("conservative Estimate(%s) = %d exceeds plain %d", key, c, p)
		}
	}
}

func TestResetAndTotal(t *testing.T) {
	s, _ := NewConservative(64, 3)
	s.Add("a", 5)
	s.Add("b", 7)
	if got := s.Total(); got != 12 {
		t.Fatalf("Total = %d, want 12", got)
	}
	s.Reset()
	if got := s.Total(); got != 0 {
		t.Fatalf("Total after Reset = %d, want 0", got)
	}
	if got := s.Estimate("a"); got != 0 {
		t.Fatalf("Estimate after Reset = %d, want 0", got)
	}
}

func TestPairHashAsymmetric(t *testing.T) {
	a, b := HashKey("alpha"), HashKey("beta")
	if PairHash(a, b) == PairHash(b, a) {
		t.Fatal("PairHash must distinguish (a,b) from (b,a)")
	}
	if PairHash(a, b) != PairHash(a, b) {
		t.Fatal("PairHash must be deterministic")
	}
}

func TestRotatingWindowCounts(t *testing.T) {
	r, err := NewRotating(256, 4, time.Minute, 10)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(1_700_000_000, 0)
	h := HashKey("phrase")
	// One occurrence per minute for 5 minutes.
	for i := 0; i < 5; i++ {
		r.Add(base.Add(time.Duration(i)*time.Minute), h, 1)
	}
	now := base.Add(4 * time.Minute)
	if got := r.EstimateWindow(now, 2*time.Minute, h); got != 3 {
		// Whole-period rounding: a 2m window over 1m periods covers 3 periods.
		t.Errorf("EstimateWindow(2m) = %d, want 3", got)
	}
	if got := r.EstimateWindow(now, time.Hour, h); got != 5 {
		t.Errorf("EstimateWindow(1h) = %d, want 5", got)
	}
	if got := r.EstimateWindow(now, 0, h); got != 1 {
		t.Errorf("EstimateWindow(0) = %d, want 1 (current period only)", got)
	}
}

func TestRotatingRecyclesOldPeriods(t *testing.T) {
	r, err := NewRotating(256, 4, time.Minute, 3)
	if err != nil {
		t.Fatal(err)
	}
	var evicted []int
	r.OnEvict = func(slot int) { evicted = append(evicted, slot) }
	base := time.Unix(1_700_000_000, 0).Truncate(time.Minute)
	h := HashKey("phrase")
	r.Add(base, h, 1)
	// 3 minutes later the ring has wrapped; the old period's count is gone.
	later := base.Add(3 * time.Minute)
	r.Add(later, h, 1)
	if len(evicted) != 1 {
		t.Fatalf("OnEvict fired %d times, want 1", len(evicted))
	}
	if got := r.EstimateWindow(later, time.Hour, h); got != 1 {
		t.Errorf("EstimateWindow after wrap = %d, want 1 (old period recycled)", got)
	}
	r.Reset()
	if got := r.EstimateWindow(later, time.Hour, h); got != 0 {
		t.Errorf("EstimateWindow after Reset = %d, want 0", got)
	}
}

package sketch

import (
	"fmt"
	"time"
)

// Rotating slices time into fixed periods and keeps one conservative
// count-min sketch per period in a ring: Add lands in the current
// period's sketch, a windowed estimate sums the periods overlapping the
// window, and periods older than period*len(ring) are recycled in place.
// Windows are rounded up to whole periods (a "1h" window over 1m periods
// covers the 60-61 periods touching the last hour), which keeps every
// windowed estimate an upper bound of the true windowed count.
//
// Rotating is not safe for concurrent mutation; reads (EstimateWindow,
// WindowSlots) never mutate the ring, so the live tail serves them under
// the miner's read lock while Add runs under the write lock.
type Rotating struct {
	period time.Duration
	slots  []periodSlot
	// OnEvict, when non-nil, fires with a ring index just before Add
	// recycles that slot for a new period — the hook the live tail uses to
	// clear its per-period phrase candidate map in lockstep.
	OnEvict func(slot int)
}

// periodSlot is one ring entry: the epoch (period number since the Unix
// epoch) it currently holds, and that period's sketch. epoch < 0 marks an
// empty slot.
type periodSlot struct {
	epoch int64
	cm    *CountMin
}

// NewRotating creates a ring of periods conservative-update sketches of
// the given dimensions, each covering one period of time.
func NewRotating(width, depth int, period time.Duration, periods int) (*Rotating, error) {
	if period <= 0 {
		return nil, fmt.Errorf("sketch: rotation period must be positive, got %v", period)
	}
	if periods < 1 {
		return nil, fmt.Errorf("sketch: period count must be positive, got %d", periods)
	}
	r := &Rotating{period: period, slots: make([]periodSlot, periods)}
	for i := range r.slots {
		cm, err := NewConservative(width, depth)
		if err != nil {
			return nil, err
		}
		r.slots[i] = periodSlot{epoch: -1, cm: cm}
	}
	return r, nil
}

// Period reports the rotation period.
func (r *Rotating) Period() time.Duration { return r.period }

// Periods reports the ring size — the maximum history in periods.
func (r *Rotating) Periods() int { return len(r.slots) }

// Bytes reports the ring's summed sketch footprint.
func (r *Rotating) Bytes() int64 {
	var n int64
	for i := range r.slots {
		n += r.slots[i].cm.Bytes()
	}
	return n
}

// epochOf maps an instant to its period number.
func (r *Rotating) epochOf(t time.Time) int64 {
	return t.UnixNano() / int64(r.period)
}

// Advance returns the ring index holding now's period, recycling the slot
// (and firing OnEvict) if it still holds an expired period. Mutates the
// ring; callers hold the write side.
func (r *Rotating) Advance(now time.Time) int {
	epoch := r.epochOf(now)
	i := int(epoch % int64(len(r.slots)))
	if r.slots[i].epoch != epoch {
		if r.slots[i].epoch >= 0 && r.OnEvict != nil {
			r.OnEvict(i)
		}
		r.slots[i].cm.Reset()
		r.slots[i].epoch = epoch
	}
	return i
}

// Add records n occurrences of the pre-hashed key in now's period and
// returns the ring index it landed in.
func (r *Rotating) Add(now time.Time, h uint64, n uint64) int {
	i := r.Advance(now)
	r.slots[i].cm.AddHash(h, n)
	return i
}

// WindowSlots lists the ring indices whose periods overlap [now-window,
// now], oldest first. Read-only: expired slots are simply excluded, not
// recycled. A non-positive window selects only the current period.
func (r *Rotating) WindowSlots(now time.Time, window time.Duration) []int {
	lo, hi := r.windowEpochs(now, window)
	out := make([]int, 0, hi-lo+1)
	for e := lo; e <= hi; e++ {
		i := int(e % int64(len(r.slots)))
		if r.slots[i].epoch == e {
			out = append(out, i)
		}
	}
	return out
}

// windowEpochs bounds the epochs overlapping [now-window, now], clamped
// to the ring's capacity so a wrapped slot is never double-counted.
func (r *Rotating) windowEpochs(now time.Time, window time.Duration) (lo, hi int64) {
	hi = r.epochOf(now)
	if window <= 0 {
		return hi, hi
	}
	lo = r.epochOf(now.Add(-window))
	if oldest := hi - int64(len(r.slots)) + 1; lo < oldest {
		lo = oldest
	}
	return lo, hi
}

// EstimateWindow upper-bounds the pre-hashed key's count over [now-window,
// now]: the sum of the overlapping periods' estimates, each itself a
// never-undercounting estimate.
func (r *Rotating) EstimateWindow(now time.Time, window time.Duration, h uint64) uint64 {
	var sum uint64
	for _, i := range r.WindowSlots(now, window) {
		sum += r.slots[i].cm.EstimateHash(h)
	}
	return sum
}

// ErrorBoundWindow sums the overlapping periods' additive error bounds —
// the windowed counterpart of CountMin.ErrorBound.
func (r *Rotating) ErrorBoundWindow(now time.Time, window time.Duration) uint64 {
	var sum uint64
	for _, i := range r.WindowSlots(now, window) {
		sum += r.slots[i].cm.ErrorBound()
	}
	return sum
}

// Reset empties every period.
func (r *Rotating) Reset() {
	for i := range r.slots {
		r.slots[i].cm.Reset()
		r.slots[i].epoch = -1
	}
}

package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := Workers(1); got != 1 {
		t.Errorf("Workers(1) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := Workers(0); got != want {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, want)
	}
	if got := Workers(-5); got != want {
		t.Errorf("Workers(-5) = %d, want GOMAXPROCS %d", got, want)
	}
}

func TestShardsCoverage(t *testing.T) {
	for n := 0; n <= 37; n++ {
		for k := -1; k <= 12; k++ {
			ranges := Shards(n, k)
			if n == 0 {
				if len(ranges) != 0 {
					t.Fatalf("Shards(0,%d) = %v, want none", k, ranges)
				}
				continue
			}
			pos := 0
			for _, r := range ranges {
				if r.Lo != pos {
					t.Fatalf("Shards(%d,%d): gap/overlap at %v (pos %d)", n, k, r, pos)
				}
				if r.Len() <= 0 {
					t.Fatalf("Shards(%d,%d): empty range %v", n, k, r)
				}
				pos = r.Hi
			}
			if pos != n {
				t.Fatalf("Shards(%d,%d): covers [0,%d), want [0,%d)", n, k, pos, n)
			}
			if k > 1 && len(ranges) > k {
				t.Fatalf("Shards(%d,%d): %d ranges exceeds request", n, k, len(ranges))
			}
		}
	}
}

func TestForEachShardVisitsAll(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		const n = 101
		var visited [n]atomic.Int32
		ForEachShard(n, 8, workers, func(_ int, r Range) {
			for i := r.Lo; i < r.Hi; i++ {
				visited[i].Add(1)
			}
		})
		for i := range visited {
			if c := visited[i].Load(); c != 1 {
				t.Fatalf("workers=%d: item %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachSequentialOrder(t *testing.T) {
	var order []int
	ForEach(10, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential ForEach out of order: %v", order)
		}
	}
	if len(order) != 10 {
		t.Fatalf("sequential ForEach visited %d items", len(order))
	}
}

func TestForEachParallelCount(t *testing.T) {
	var count atomic.Int64
	ForEach(1000, 7, func(int) { count.Add(1) })
	if count.Load() != 1000 {
		t.Fatalf("visited %d items, want 1000", count.Load())
	}
}

// Package parallel provides the small concurrency substrate shared by the
// index-construction paths: worker-count resolution, contiguous range
// sharding, and a fork-join loop over shards. Every helper degenerates to a
// plain sequential loop when one worker is requested, so parallel callers
// keep a byte-identical sequential special case (Workers=1) for free.
//
// Determinism contract: helpers never reorder work output. Shards are
// contiguous and indexed, so callers that write per-shard results and merge
// them in shard order produce output identical to a sequential pass.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count knob: n > 0 selects n workers, anything
// else (the zero value of a config field) selects GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Range is a half-open interval [Lo, Hi) of item indexes.
type Range struct {
	Lo, Hi int
}

// Len reports the number of items in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Shards splits n items into at most k contiguous near-equal ranges. Fewer
// ranges are returned when n < k; n == 0 yields none. Concatenating the
// ranges in order always reproduces [0, n).
func Shards(n, k int) []Range {
	if n <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	if k <= 1 {
		return []Range{{0, n}}
	}
	out := make([]Range, 0, k)
	for i := 0; i < k; i++ {
		lo := i * n / k
		hi := (i + 1) * n / k
		if lo < hi {
			out = append(out, Range{lo, hi})
		}
	}
	return out
}

// ForEachShard splits n items into shards contiguous ranges and invokes
// fn(shardIndex, r) for each, running at most workers invocations
// concurrently. With workers <= 1 the shards run sequentially in order on
// the calling goroutine. fn must not panic; shards are disjoint so fn may
// write freely to per-shard slots.
func ForEachShard(n, shards, workers int, fn func(shard int, r Range)) {
	ForEachOf(Shards(n, shards), workers, fn)
}

// ForEachOf runs fn over precomputed ranges (see Shards), at most workers
// concurrently. Callers that size per-shard result slots with len(ranges)
// use this form so the indexes line up by construction.
func ForEachOf(ranges []Range, workers int, fn func(shard int, r Range)) {
	if len(ranges) == 0 {
		return
	}
	if workers <= 1 || len(ranges) == 1 {
		for i, r := range ranges {
			fn(i, r)
		}
		return
	}
	if workers > len(ranges) {
		workers = len(ranges)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i, ranges[i])
			}
		}()
	}
	for i := range ranges {
		next <- i
	}
	close(next)
	wg.Wait()
}

// ForEach invokes fn(i) for every i in [0, n), running at most workers
// invocations concurrently (sequentially in order when workers <= 1).
// Work is handed out item-by-item through an atomic counter, so it
// balances well when per-item cost varies wildly (e.g. one phrase list
// per vocabulary word) without per-item channel synchronization.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

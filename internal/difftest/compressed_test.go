package difftest

import "testing"

// TestCompressedEquivalence asserts that the physical list layout is
// invisible to queries: a block-compressed index and a zero-copy mapped
// snapshot of the same corpus answer the full harvested workload (NRA and
// SMJ at every fraction, plus GM) bit-identically to the raw-slice index.
func TestCompressedEquivalence(t *testing.T) {
	rep, err := RunCompressedEquivalence(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cases < 100 {
		t.Fatalf("only %d differential cases ran, want >= 100", rep.Cases)
	}
	for _, f := range rep.Failures {
		t.Error(f)
	}
	if len(rep.Failures) > 0 {
		t.Fatalf("%d compressed-equivalence violations", len(rep.Failures))
	}
}

package difftest

import (
	"testing"

	"phrasemine/internal/corpus"
)

// TestDifferentialContract is the harness's standing gate: >= 100 random
// query/corpus cases per run against the exact baselines, zero hard
// contract violations, and bounded multi-keyword quality.
func TestDifferentialContract(t *testing.T) {
	rep, err := Run(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Failures {
		t.Error(f)
	}
	if rep.Cases < 100 {
		t.Errorf("harness ran %d cases, want >= 100 (single %d, multi %d)",
			rep.Cases, rep.SingleCases, rep.MultiCases)
	}
	if rep.SingleCases == 0 || rep.MultiCases == 0 {
		t.Errorf("degenerate workload: single %d, multi %d", rep.SingleCases, rep.MultiCases)
	}

	// Bounded-quality contract for the approximate multi-keyword path.
	// Full lists should track the exact baseline closely; truncated lists
	// trade quality for speed but must stay useful. Thresholds sit below
	// the paper's reported quality (Figures 5-6) to keep the gate about
	// contract violations, not noise.
	for key, mean := range rep.MeanPrecision {
		t.Logf("%s: mean precision@k %.3f over %d cases", key, mean, rep.precisionN[key])
		min := 0.30
		if key.Fraction >= 1.0 {
			min = 0.50
			if key.Op == corpus.OpAND {
				// AND's log-domain scores are the harsher
				// approximation (a single miss disqualifies).
				min = 0.40
			}
		}
		if mean < min {
			t.Errorf("%s: mean precision %.3f below contract %.2f", key, mean, min)
		}
	}
	if len(rep.MeanPrecision) == 0 {
		t.Error("no precision buckets recorded")
	}
}

// TestHarnessDeterminism: the harness must be reproducible run to run so a
// CI failure is debuggable.
func TestHarnessDeterminism(t *testing.T) {
	a, err := Run(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.Cases != b.Cases || len(a.Failures) != len(b.Failures) {
		t.Fatalf("non-deterministic harness: %d/%d cases, %d/%d failures",
			a.Cases, b.Cases, len(a.Failures), len(b.Failures))
	}
	for key, mean := range a.MeanPrecision {
		if b.MeanPrecision[key] != mean {
			t.Errorf("%s: precision %.6f vs %.6f across runs", key, mean, b.MeanPrecision[key])
		}
	}
}

package difftest

// Live-tail equivalence mode: the streaming analogue of the differential
// contract, in three legs.
//
//   - Sketch bound: over the same ingested documents, a sketch-path tail
//     must never undercount the exact-path tail, must never exceed a
//     phrase's exact tail document frequency, and every raw feature×phrase
//     pair estimate must sit within the tail's published error bound
//     (PairBound) of the true pair count. The corpora are seeded, so the
//     probabilistic bound is checked on a fixed, reproducible stream.
//
//   - Live visibility: documents added to a tail-enabled miner answer
//     queries before any Flush, with the tail markers (TailDocs,
//     Approximate on the sketch path) set truthfully.
//
//   - Post-compaction bit-identity: a miner that ingested part of its
//     corpus through the live tail and then compacted (Flush) must answer
//     every harvested query bit-identically — phrase strings and the raw
//     float bits of Score and Interestingness — to a miner batch-built
//     from the full corpus, on both the monolithic and sharded engines
//     and both list algorithms. Compaction must be invisible.
//
// Hard violations land in Report.Failures, as in every other mode.

import (
	"context"
	"fmt"
	"strings"

	"phrasemine"
	"phrasemine/internal/corpus"
	"phrasemine/internal/livetail"
	"phrasemine/internal/synth"
)

// RunLiveTailEquivalence executes the live-tail differential over every
// corpus in opt.
func RunLiveTailEquivalence(opt Options) (*Report, error) {
	if opt.K <= 0 {
		opt.K = 5
	}
	rep := &Report{
		MeanPrecision: map[Key]float64{},
		precisionSum:  map[Key]float64{},
		precisionN:    map[Key]int{},
	}
	for _, cfg := range opt.Corpora {
		if err := runLiveTailCorpus(rep, cfg, opt); err != nil {
			return nil, fmt.Errorf("difftest: live-tail corpus %s: %w", cfg.Name, err)
		}
	}
	return rep, nil
}

func runLiveTailCorpus(rep *Report, cfg synth.Config, opt Options) error {
	s, err := prepare(cfg, opt)
	if err != nil {
		return err
	}
	tokens, err := s.c.TokenSlices()
	if err != nil {
		return err
	}
	queries := append(append([][]string(nil), s.single...), s.multi...)

	if err := checkSketchBound(rep, cfg.Name, tokens, queries); err != nil {
		return err
	}

	texts := make([]string, len(tokens))
	for d, ts := range tokens {
		texts[d] = strings.Join(ts, " ")
	}
	// The last fifth of the corpus arrives through the live tail; the rest
	// is the batch-built base.
	split := len(texts) - len(texts)/5
	if split == len(texts) {
		split = len(texts) - 1
	}

	batch, err := phrasemine.NewMinerFromTexts(texts, phrasemine.Config{Workers: opt.Workers})
	if err != nil {
		return err
	}
	defer batch.Close()

	miners := []struct {
		name string
		cfg  phrasemine.Config
	}{
		{"monolithic", phrasemine.Config{Workers: opt.Workers, Tail: phrasemine.TailConfig{Enabled: true}}},
		{"sharded", phrasemine.Config{Workers: opt.Workers, Segments: 4, Tail: phrasemine.TailConfig{Enabled: true}}},
	}
	for _, eng := range miners {
		live, err := phrasemine.NewMinerFromTexts(texts[:split], eng.cfg)
		if err != nil {
			return err
		}
		for _, text := range texts[split:] {
			if err := live.Add(phrasemine.Document{Text: text}); err != nil {
				live.Close()
				return err
			}
		}

		checkLiveVisibility(rep, cfg.Name, eng.name, live, queries, opt.K)

		if err := live.Flush(); err != nil {
			live.Close()
			return err
		}
		checkPostCompaction(rep, cfg.Name, eng.name, batch, live, queries, opt.K)
		live.Close()
	}
	return nil
}

// checkSketchBound ingests every document into a forced-sketch tail and an
// exact twin and compares their answers per query and per raw pair.
func checkSketchBound(rep *Report, name string, tokens [][]string, queries [][]string) error {
	mk := func(threshold int) (*livetail.Tail, error) {
		return livetail.New(livetail.Config{ExactThreshold: threshold, MinWords: 1, MaxWords: 3})
	}
	sk, err := mk(-1) // sketch path from the first document
	if err != nil {
		return err
	}
	ex, err := mk(1 << 30) // exact path always
	if err != nil {
		return err
	}
	for _, ts := range tokens {
		sk.Add(corpus.Document{Tokens: ts})
		ex.Add(corpus.Document{Tokens: ts})
	}
	bound := int(sk.PairBound())

	for _, op := range []corpus.Operator{corpus.OpAND, corpus.OpOR} {
		for _, kws := range queries {
			q := corpus.NewQuery(op, kws...)
			skC, _, approx := sk.Counts(q)
			if !approx {
				rep.failf("%s sketch %v: forced-sketch tail answered exactly", name, q)
				continue
			}
			exC, _, approxE := ex.Counts(q)
			if approxE {
				rep.failf("%s sketch %v: exact tail answered approximately", name, q)
				continue
			}
			for p, want := range exC {
				got := skC[p]
				if got < want {
					rep.failf("%s sketch %v: phrase %q undercounted: sketch %d < exact %d", name, q, p, got, want)
				}
				if df := sk.DF(p); got > df {
					rep.failf("%s sketch %v: phrase %q count %d exceeds tail df %d", name, q, p, got, df)
				}
			}
			// The raw pair estimates behind the aggregate: each must cover
			// the true pair count and overshoot it by at most PairBound.
			for _, f := range kws {
				truePairs, _, _ := ex.Counts(corpus.NewQuery(corpus.OpOR, f))
				for p, want := range truePairs {
					got := int(sk.PairEstimate(f, p))
					if got < want {
						rep.failf("%s sketch pair (%s,%q): estimate %d < true %d", name, f, p, got, want)
					}
					if got-want > bound {
						rep.failf("%s sketch pair (%s,%q): estimate %d overshoots true %d beyond bound %d",
							name, f, p, got, want, bound)
					}
				}
			}
			rep.Cases++
		}
	}
	return nil
}

// checkLiveVisibility runs the workload against the un-flushed miner: every
// answer must carry truthful tail markers, and a consulted tail must report
// at least one document.
func checkLiveVisibility(rep *Report, name, eng string, live *phrasemine.Miner, queries [][]string, k int) {
	st, ok := live.TailStats()
	if !ok || st.Docs == 0 {
		rep.failf("%s %s live: tail empty before flush: %+v", name, eng, st)
		return
	}
	for _, op := range []phrasemine.Operator{phrasemine.AND, phrasemine.OR} {
		for _, kws := range queries {
			mined, err := live.MineDetailed(context.Background(), kws, op, phrasemine.QueryOptions{K: k})
			if err != nil {
				rep.failf("%s %s live %v: %v", name, eng, kws, err)
				continue
			}
			if mined.TailDocs < 0 || mined.TailDocs > st.Docs {
				rep.failf("%s %s live %v: TailDocs %d outside [0,%d]", name, eng, kws, mined.TailDocs, st.Docs)
			}
			if mined.Approximate && mined.TailDocs == 0 {
				rep.failf("%s %s live %v: approximate answer without tail documents", name, eng, kws)
			}
			rep.Cases++
		}
	}
}

// checkPostCompaction compares the compacted live miner against the
// batch-built one, bit for bit.
func checkPostCompaction(rep *Report, name, eng string, batch, live *phrasemine.Miner, queries [][]string, k int) {
	if st, ok := live.TailStats(); !ok || st.Docs != 0 {
		rep.failf("%s %s compacted: tail not empty after flush: %+v", name, eng, st)
	}
	for _, op := range []phrasemine.Operator{phrasemine.AND, phrasemine.OR} {
		for _, algo := range []phrasemine.Algorithm{phrasemine.AlgoNRA, phrasemine.AlgoSMJ} {
			for _, kws := range queries {
				qopt := phrasemine.QueryOptions{K: k, Algorithm: algo}
				want, wantErr := batch.Mine(kws, op, qopt)
				mined, gotErr := live.MineDetailed(context.Background(), kws, op, qopt)
				if (wantErr == nil) != (gotErr == nil) {
					rep.failf("%s %s/%s %v: error asymmetry after compaction: %v vs %v",
						name, eng, algo, kws, wantErr, gotErr)
					continue
				}
				if wantErr != nil {
					continue
				}
				if mined.TailDocs != 0 || mined.Approximate {
					rep.failf("%s %s/%s %v: compacted answer still carries tail markers: %+v",
						name, eng, algo, kws, mined)
				}
				if !sameResults(want, mined.Results) {
					rep.failf("%s %s/%s %v: compacted miner diverges from batch build:\n  batch: %v\n  live:  %v",
						name, eng, algo, kws, want, mined.Results)
				}
				rep.Cases++
			}
		}
	}
}

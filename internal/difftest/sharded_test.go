package difftest

import "testing"

// TestShardedEquivalence locks the sharded engine bit-identical to the
// monolithic index at every tested segment count: NRA/SMJ answers must
// match the canonical monolithic SMJ answer float-bit for float-bit
// (ordering included), GM must match the monolithic GM, and the phrase
// universe, vocabulary and sub-collection sizes must agree — the
// acceptance contract of the sharded engine.
func TestShardedEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded differential is not a -short test")
	}
	opt := DefaultOptions()
	rep, err := RunShardedEquivalence(opt, []int{1, 2, 4, 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Failures {
		t.Error(f)
	}
	// Two corpora x two operators x 4 segment counts over the full
	// workload: well over a hundred differential cases.
	if rep.Cases < 100 {
		t.Fatalf("only %d sharded differential cases ran", rep.Cases)
	}
	t.Logf("sharded differential: %d cases, %d failures", rep.Cases, len(rep.Failures))
}

// Package difftest implements the differential-testing harness that locks
// the approximate miner to its exact baselines. It generates random
// synthetic corpora and query workloads (internal/synth), mines them with
// the list-based NRA and SMJ algorithms, and checks every answer against
// the exhaustive Exact scorer under the paper's approximation contract:
//
//   - Single-keyword queries: the conditional-independence assumption is
//     vacuous (the score IS P(q|p) = ID(p, D') up to the constant |D|/|D'|
//     factor), so the approximate top-k must equal the exact top-k —
//     identical score vectors, and every returned phrase's score must equal
//     its exact interestingness.
//
//   - Multi-keyword queries: the assumption is an approximation, so the
//     contract is bounded quality — precision@k against the paper's
//     Section 5.3 relevance rule (exact top-k union perfectly-interesting
//     phrases), aggregated per corpus/operator/fraction and thresholded by
//     the caller.
//
//   - Cross-algorithm: NRA and SMJ consume the same lists, so their result
//     sets must be identical at every fraction (Section 5.3 notes the two
//     "return the same result sets").
//
//   - Cross-implementation: the flat, scratch-pooled NRA must answer
//     bit-identically (result IDs, score/bound float bits, and stats) to
//     the retained map-based topk.NRAReference on every query the harness
//     generates.
//
//   - Cross-topology: the sharded multi-segment engine must answer
//     bit-identically to the monolithic index at every tested segment
//     count (RunShardedEquivalence; see sharded.go for the exact
//     contract), just as the compressed/mapped physical layouts must
//     (RunCompressedEquivalence) and snapshot round-trips must
//     (RunSnapshotRoundTrip).
//
// Hard violations land in Report.Failures; quality aggregates land in
// Report and are asserted by the calling test.
package difftest

import (
	"fmt"
	"math"
	"sort"

	"phrasemine/internal/baseline"
	"phrasemine/internal/core"
	"phrasemine/internal/corpus"
	"phrasemine/internal/eval"
	"phrasemine/internal/parallel"
	"phrasemine/internal/phrasedict"
	"phrasemine/internal/plist"
	"phrasemine/internal/synth"
	"phrasemine/internal/textproc"
	"phrasemine/internal/topk"
)

// Options configures one harness run.
type Options struct {
	// Corpora are the synthetic corpus configurations to mine (each is
	// deterministic given its Seed).
	Corpora []synth.Config
	// MultiQuotas shapes the multi-keyword workload harvested from each
	// corpus's own frequent phrases, as the paper harvests its query sets.
	MultiQuotas []synth.LengthQuota
	// SingleCount is the number of single-keyword queries per corpus.
	SingleCount int
	// HarvestMinDocFreq is the harvest threshold (phrases below it are
	// not used as queries).
	HarvestMinDocFreq int
	// K is the result depth (the paper's k = 5).
	K int
	// Fractions are the partial-list fractions to exercise; 1.0 must be
	// present for the single-keyword exactness contract.
	Fractions []float64
	// Workers is the index-build concurrency (0 = GOMAXPROCS).
	Workers int
}

// DefaultOptions exercises two corpus shapes (Reuters-like and
// Pubmed-like, scaled to test size) with enough queries for well over 100
// differential cases per run.
func DefaultOptions() Options {
	return Options{
		Corpora: []synth.Config{
			synth.ReutersLike().Scale(0.02),
			synth.PubmedLike().Scale(0.008),
		},
		MultiQuotas: []synth.LengthQuota{
			{Words: 2, Count: 12},
			{Words: 3, Count: 8},
		},
		SingleCount:       10,
		HarvestMinDocFreq: 3,
		K:                 5,
		Fractions:         []float64{1.0, 0.5},
		Workers:           0,
	}
}

// Key identifies one aggregation bucket of the quality contract.
type Key struct {
	Corpus   string
	Op       corpus.Operator
	Fraction float64
}

func (k Key) String() string {
	return fmt.Sprintf("%s/%s@%d%%", k.Corpus, k.Op, int(k.Fraction*100+0.5))
}

// Report is the harness outcome.
type Report struct {
	// Cases is the total number of differential query evaluations (each
	// query × operator × fraction checked against the exact baseline).
	Cases int
	// SingleCases and MultiCases split Cases by query arity.
	SingleCases int
	MultiCases  int
	// Failures lists hard contract violations (empty on a passing run).
	Failures []string
	// MeanPrecision is the mean precision@K of the multi-keyword cases
	// per bucket, under the paper's Section 5.3 relevance rule.
	MeanPrecision map[Key]float64
	precisionSum  map[Key]float64
	precisionN    map[Key]int
}

func (r *Report) failf(format string, args ...any) {
	r.Failures = append(r.Failures, fmt.Sprintf(format, args...))
}

func (r *Report) recordPrecision(k Key, p float64) {
	r.precisionSum[k] += p
	r.precisionN[k]++
	r.MeanPrecision[k] = r.precisionSum[k] / float64(r.precisionN[k])
}

// Run executes the harness.
func Run(opt Options) (*Report, error) {
	if opt.K <= 0 {
		opt.K = 5
	}
	rep := &Report{
		MeanPrecision: map[Key]float64{},
		precisionSum:  map[Key]float64{},
		precisionN:    map[Key]int{},
	}
	for _, cfg := range opt.Corpora {
		if err := runCorpus(rep, cfg, opt); err != nil {
			return nil, fmt.Errorf("difftest: corpus %s: %w", cfg.Name, err)
		}
	}
	return rep, nil
}

// setup is one prepared differential corpus: the generated documents, the
// built index, and the harvested query workloads.
type setup struct {
	c      *corpus.Corpus
	ix     *core.Index
	single [][]string
	multi  [][]string
}

// prepare generates one corpus, harvests its workloads and builds the
// (list-feature-restricted) index — the shared front half of every
// differential mode.
func prepare(cfg synth.Config, opt Options) (*setup, error) {
	c, err := cfg.Generate()
	if err != nil {
		return nil, err
	}
	workers := parallel.Workers(opt.Workers)
	extractor := textproc.ExtractorOptions{MinDocFreq: 3}
	tokens, err := c.TokenSlices()
	if err != nil {
		return nil, err
	}
	stats, err := textproc.Extract(tokens, extractor)
	if err != nil {
		return nil, err
	}
	wordIx, err := corpus.BuildInvertedParallel(c, workers)
	if err != nil {
		return nil, err
	}

	multi, err := synth.HarvestQueries(stats, synth.QuerySpec{
		Quotas:     opt.MultiQuotas,
		MinDocFreq: opt.HarvestMinDocFreq,
		Seed:       cfg.Seed + 1,
	}, wordIx.DocFreq, c.Len())
	if err != nil {
		return nil, err
	}
	single, err := synth.HarvestQueries(stats, synth.QuerySpec{
		Quotas:     []synth.LengthQuota{{Words: 1, Count: opt.SingleCount}},
		MinDocFreq: opt.HarvestMinDocFreq,
		Seed:       cfg.Seed + 2,
	}, wordIx.DocFreq, c.Len())
	if err != nil {
		return nil, err
	}
	// Harvest fallbacks may pad the single-keyword quota with longer
	// phrases; keep strictly single-keyword queries.
	oneWord := single[:0]
	for _, q := range single {
		if len(q) == 1 {
			oneWord = append(oneWord, q)
		}
	}
	single = oneWord

	features := map[string]struct{}{}
	var listFeatures []string
	for _, qs := range [][][]string{multi, single} {
		for _, q := range qs {
			for _, f := range q {
				if _, dup := features[f]; !dup {
					features[f] = struct{}{}
					listFeatures = append(listFeatures, f)
				}
			}
		}
	}
	ix, err := core.Build(c, core.BuildOptions{
		Extractor:    extractor,
		ListFeatures: listFeatures,
		Workers:      opt.Workers,
	})
	if err != nil {
		return nil, err
	}
	return &setup{c: c, ix: ix, single: single, multi: multi}, nil
}

// runCorpus generates one corpus, harvests its workloads, builds the index
// and runs every differential case.
func runCorpus(rep *Report, cfg synth.Config, opt Options) error {
	s, err := prepare(cfg, opt)
	if err != nil {
		return err
	}
	ix, single, multi := s.ix, s.single, s.multi
	ex, err := ix.Exact()
	if err != nil {
		return err
	}

	smj := map[float64]*core.SMJIndex{}
	for _, frac := range opt.Fractions {
		smj[frac], err = ix.BuildSMJ(frac)
		if err != nil {
			return err
		}
	}

	for _, op := range []corpus.Operator{corpus.OpAND, corpus.OpOR} {
		for _, kws := range single {
			q := corpus.NewQuery(op, kws...)
			checkSingle(rep, cfg.Name, ix, ex, q, opt.K)
			checkFlatVsReference(rep, cfg.Name, ix, q, opt.K, 1.0)
			rep.Cases++
			rep.SingleCases++
		}
		for _, frac := range opt.Fractions {
			for _, kws := range multi {
				q := corpus.NewQuery(op, kws...)
				checkMulti(rep, Key{cfg.Name, op, frac}, ix, ex, smj[frac], q, opt.K)
				checkFlatVsReference(rep, cfg.Name, ix, q, opt.K, frac)
				rep.Cases++
				rep.MultiCases++
			}
		}
	}
	return nil
}

// checkFlatVsReference enforces the cross-implementation contract: the
// production flat NRA and the retained map-based reference must return
// bit-identical answers and telemetry over the same lists.
func checkFlatVsReference(rep *Report, name string, ix *core.Index, q corpus.Query, k int, frac float64) {
	mk := func() []plist.Cursor {
		cursors := make([]plist.Cursor, len(q.Features))
		for i, f := range q.Features {
			cursors[i] = plist.NewMemCursor(ix.Lists[f])
		}
		return cursors
	}
	opt := topk.NRAOptions{K: k, Op: q.Op, Fraction: frac}
	flat, flatStats, flatErr := topk.NRA(mk(), opt)
	ref, refStats, refErr := topk.NRAReference(mk(), opt)
	if (flatErr == nil) != (refErr == nil) {
		rep.failf("%s flat-vs-ref %v@%g: error mismatch: flat=%v ref=%v", name, q, frac, flatErr, refErr)
		return
	}
	if flatErr != nil {
		return
	}
	if len(flat) != len(ref) {
		rep.failf("%s flat-vs-ref %v@%g: %d results vs %d", name, q, frac, len(flat), len(ref))
		return
	}
	for i := range flat {
		f, r := flat[i], ref[i]
		if f.Phrase != r.Phrase ||
			math.Float64bits(f.Score) != math.Float64bits(r.Score) ||
			math.Float64bits(f.Lower) != math.Float64bits(r.Lower) ||
			math.Float64bits(f.Upper) != math.Float64bits(r.Upper) {
			rep.failf("%s flat-vs-ref %v@%g: result %d differs: flat=%+v ref=%+v", name, q, frac, i, f, r)
			return
		}
	}
	if flatStats.Iterations != refStats.Iterations ||
		flatStats.MaxCandidates != refStats.MaxCandidates ||
		flatStats.PrunedCandidates != refStats.PrunedCandidates ||
		flatStats.StoppedEarly != refStats.StoppedEarly ||
		flatStats.CheckNewOffAt != refStats.CheckNewOffAt {
		rep.failf("%s flat-vs-ref %v@%g: stats differ: flat=%+v ref=%+v", name, q, frac, flatStats, refStats)
	}
}

// checkSingle enforces the exactness contract for a single-keyword query:
// the approximate result must equal the exact top-k (identical score
// vectors; set equality up to ties at the k-th score), and every returned
// score must equal the phrase's exact interestingness.
func checkSingle(rep *Report, name string, ix *core.Index, ex *baseline.Exact, q corpus.Query, k int) {
	const eps = 1e-9
	nra, _, err := ix.QueryNRA(q, topk.NRAOptions{K: k})
	if err != nil {
		rep.failf("%s single %v: NRA: %v", name, q, err)
		return
	}
	exact, err := ex.TopK(q, k)
	if err != nil {
		rep.failf("%s single %v: exact: %v", name, q, err)
		return
	}
	dPrime, err := ex.Select(q)
	if err != nil {
		rep.failf("%s single %v: select: %v", name, q, err)
		return
	}
	set := corpus.BitmapFromList(dPrime, ix.Corpus.Len())

	if len(nra) != len(exact) {
		rep.failf("%s single %v: approximate returned %d results, exact %d", name, q, len(nra), len(exact))
		return
	}
	for i, r := range nra {
		got := scoreToProb(q.Op, r.Score)
		want := ex.Interestingness(r.Phrase, set)
		if math.Abs(got-want) > eps {
			rep.failf("%s single %v: result %d phrase %d score %v != exact interestingness %v",
				name, q, i, r.Phrase, got, want)
		}
		if math.Abs(got-exact[i].Score) > eps {
			rep.failf("%s single %v: rank %d score %v != exact rank score %v (tie-safe vector compare)",
				name, q, i, got, exact[i].Score)
		}
	}
}

// checkMulti enforces the bounded-quality and cross-algorithm contracts for
// a multi-keyword query at one fraction.
func checkMulti(rep *Report, key Key, ix *core.Index, ex *baseline.Exact, smj *core.SMJIndex, q corpus.Query, k int) {
	nra, _, err := ix.QueryNRA(q, topk.NRAOptions{K: k, Fraction: key.Fraction})
	if err != nil {
		rep.failf("%s multi %v: NRA: %v", key, q, err)
		return
	}
	sm, _, err := ix.QuerySMJ(smj, q, topk.SMJOptions{K: k})
	if err != nil {
		rep.failf("%s multi %v: SMJ: %v", key, q, err)
		return
	}
	if a, b := idSet(nra), idSet(sm); !equalIDs(a, b) {
		rep.failf("%s multi %v: NRA result set %v != SMJ result set %v", key, q, a, b)
	}

	relevant, err := relevantSet(ex, q, resultIDs(nra), k, ix.Corpus.Len())
	if err != nil {
		rep.failf("%s multi %v: relevance: %v", key, q, err)
		return
	}
	if len(relevant) == 0 {
		// Empty D' cannot happen for harvested queries; treat as failure
		// so silent no-ops cannot masquerade as passing cases.
		rep.failf("%s multi %v: empty relevant set", key, q)
		return
	}
	rep.recordPrecision(key, eval.Judge(resultIDs(nra), relevant, k).Precision)
}

// relevantSet applies the paper's Section 5.3 correctness rule: the exact
// top-k union the returned phrases whose exact interestingness is 1.0.
func relevantSet(ex *baseline.Exact, q corpus.Query, returned []phrasedict.PhraseID, k, numDocs int) (map[phrasedict.PhraseID]bool, error) {
	exact, err := ex.TopK(q, k)
	if err != nil {
		return nil, err
	}
	relevant := make(map[phrasedict.PhraseID]bool, k+len(returned))
	for _, s := range exact {
		relevant[s.Phrase] = true
	}
	dPrime, err := ex.Select(q)
	if err != nil {
		return nil, err
	}
	if len(dPrime) == 0 {
		return nil, nil
	}
	set := corpus.BitmapFromList(dPrime, numDocs)
	for _, p := range returned {
		if ex.Interestingness(p, set) >= 1.0 {
			relevant[p] = true
		}
	}
	return relevant, nil
}

// scoreToProb maps an operator-domain aggregate back to probability space
// (AND scores are sums of logs).
func scoreToProb(op corpus.Operator, score float64) float64 {
	if op == corpus.OpAND {
		return math.Exp(score)
	}
	return score
}

func resultIDs(rs []topk.Result) []phrasedict.PhraseID {
	out := make([]phrasedict.PhraseID, len(rs))
	for i, r := range rs {
		out[i] = r.Phrase
	}
	return out
}

func idSet(rs []topk.Result) []phrasedict.PhraseID {
	out := resultIDs(rs)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalIDs(a, b []phrasedict.PhraseID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

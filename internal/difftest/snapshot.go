package difftest

// Snapshot round-trip mode: the persistence analogue of the differential
// contract. A built index is serialized to a snapshot, loaded back, and
// both indexes answer the harvested workload side by side. Persistence
// must be invisible to queries — every algorithm, operator and fraction
// must return bit-identical phrase IDs and scores on the loaded index —
// so any divergence is a hard failure, recorded in Report.Failures.

import (
	"bytes"
	"fmt"
	"reflect"

	"phrasemine/internal/core"
	"phrasemine/internal/corpus"
	"phrasemine/internal/synth"
	"phrasemine/internal/topk"
)

// RunSnapshotRoundTrip executes the snapshot differential: for every
// corpus in opt, build -> save -> load -> compare all query answers. The
// returned report counts each compared (query, operator, fraction,
// algorithm) evaluation as one case.
func RunSnapshotRoundTrip(opt Options) (*Report, error) {
	if opt.K <= 0 {
		opt.K = 5
	}
	rep := &Report{
		MeanPrecision: map[Key]float64{},
		precisionSum:  map[Key]float64{},
		precisionN:    map[Key]int{},
	}
	for _, cfg := range opt.Corpora {
		if err := runSnapshotCorpus(rep, cfg, opt); err != nil {
			return nil, fmt.Errorf("difftest: snapshot corpus %s: %w", cfg.Name, err)
		}
	}
	return rep, nil
}

func runSnapshotCorpus(rep *Report, cfg synth.Config, opt Options) error {
	s, err := prepare(cfg, opt)
	if err != nil {
		return err
	}

	var buf bytes.Buffer
	if _, err := s.ix.WriteSnapshot(&buf); err != nil {
		return err
	}
	// Determinism: saving the same index twice must produce the same bytes.
	var again bytes.Buffer
	if _, err := s.ix.WriteSnapshot(&again); err != nil {
		return err
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		rep.failf("%s: snapshot serialization is not deterministic", cfg.Name)
	}
	loaded, err := core.LoadSnapshot(bytes.NewReader(buf.Bytes()), opt.Workers)
	if err != nil {
		return err
	}

	queries := append(append([][]string(nil), s.single...), s.multi...)
	smjOrig := map[float64]*core.SMJIndex{}
	smjLoaded := map[float64]*core.SMJIndex{}
	for _, frac := range opt.Fractions {
		if smjOrig[frac], err = s.ix.BuildSMJ(frac); err != nil {
			return err
		}
		if smjLoaded[frac], err = loaded.BuildSMJ(frac); err != nil {
			return err
		}
	}

	for _, op := range []corpus.Operator{corpus.OpAND, corpus.OpOR} {
		for _, kws := range queries {
			q := corpus.NewQuery(op, kws...)
			for _, frac := range opt.Fractions {
				a, _, err := s.ix.QueryNRA(q, topk.NRAOptions{K: opt.K, Fraction: frac})
				if err != nil {
					rep.failf("%s %v@%g: NRA on original: %v", cfg.Name, q, frac, err)
					continue
				}
				b, _, err := loaded.QueryNRA(q, topk.NRAOptions{K: opt.K, Fraction: frac})
				if err != nil {
					rep.failf("%s %v@%g: NRA on loaded: %v", cfg.Name, q, frac, err)
					continue
				}
				if !reflect.DeepEqual(a, b) {
					rep.failf("%s %v@%g: NRA diverges after round-trip: %v vs %v", cfg.Name, q, frac, a, b)
				}
				rep.Cases++

				sa, _, err := s.ix.QuerySMJ(smjOrig[frac], q, topk.SMJOptions{K: opt.K})
				if err != nil {
					rep.failf("%s %v@%g: SMJ on original: %v", cfg.Name, q, frac, err)
					continue
				}
				sb, _, err := loaded.QuerySMJ(smjLoaded[frac], q, topk.SMJOptions{K: opt.K})
				if err != nil {
					rep.failf("%s %v@%g: SMJ on loaded: %v", cfg.Name, q, frac, err)
					continue
				}
				if !reflect.DeepEqual(sa, sb) {
					rep.failf("%s %v@%g: SMJ diverges after round-trip: %v vs %v", cfg.Name, q, frac, sa, sb)
				}
				rep.Cases++
			}

			// GM is exact and fraction-independent; compare once per query.
			ga, err := s.ix.GM()
			if err != nil {
				return err
			}
			gb, err := loaded.GM()
			if err != nil {
				rep.failf("%s %v: GM on loaded: %v", cfg.Name, q, err)
				continue
			}
			ra, _, errA := ga.TopK(q, opt.K)
			rb, _, errB := gb.TopK(q, opt.K)
			if (errA == nil) != (errB == nil) {
				rep.failf("%s %v: GM error asymmetry: %v vs %v", cfg.Name, q, errA, errB)
				continue
			}
			if errA == nil && !reflect.DeepEqual(ra, rb) {
				rep.failf("%s %v: GM diverges after round-trip", cfg.Name, q)
			}
			rep.Cases++
		}
	}
	return nil
}

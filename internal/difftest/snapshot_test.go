package difftest

import "testing"

// TestSnapshotRoundTripDifferential asserts that persistence is invisible
// to queries: a saved-and-loaded index answers the full harvested workload
// (NRA and SMJ at every fraction, plus GM) identically to the in-memory
// index it was saved from.
func TestSnapshotRoundTripDifferential(t *testing.T) {
	rep, err := RunSnapshotRoundTrip(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cases < 100 {
		t.Fatalf("only %d differential cases ran, want >= 100", rep.Cases)
	}
	for _, f := range rep.Failures {
		t.Error(f)
	}
	if len(rep.Failures) > 0 {
		t.Fatalf("%d snapshot round-trip violations", len(rep.Failures))
	}
}

package difftest

import "testing"

// TestPackedEquivalence asserts the per-block packed codec is invisible to
// query semantics: the varint-only build, the packed build, and a mapped
// snapshot of the packed build answer the full harvested workload (NRA and
// SMJ at every fraction, shared-scan variants included, plus GM)
// bit-identically — and MineBatch's shared-scan grouping matches per-query
// Mine calls exactly.
func TestPackedEquivalence(t *testing.T) {
	rep, err := RunPackedEquivalence(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cases < 100 {
		t.Fatalf("only %d differential cases ran, want >= 100", rep.Cases)
	}
	for _, f := range rep.Failures {
		t.Error(f)
	}
	if len(rep.Failures) > 0 {
		t.Fatalf("%d packed-equivalence violations", len(rep.Failures))
	}
}

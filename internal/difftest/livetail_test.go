package difftest

import "testing"

func TestLiveTailEquivalence(t *testing.T) {
	rep, err := RunLiveTailEquivalence(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Failures {
		t.Error(f)
	}
	if rep.Cases == 0 {
		t.Fatal("live-tail differential ran zero cases")
	}
	t.Logf("live-tail differential: %d cases, %d failures", rep.Cases, len(rep.Failures))
}

package difftest

// Sharded-equivalence mode: the scale-out analogue of the differential
// contract. The same corpus is indexed monolithically and as a sharded
// multi-segment engine at several segment counts, and the sharded engine
// must answer the harvested workloads bit-identically to the monolith:
//
//   - The canonical list-algorithm contract: the sharded engine's NRA and
//     SMJ answers (adaptive per-shard scatter and exhaustive scan) must be
//     bit-identical — phrase IDs, score float bits, and ordering — to the
//     monolithic SMJ answer, which is the canonical exact evaluation of
//     the papers' scoring over full lists. (The monolithic NRA reports the
//     same result set but accumulates scores in traversal order, so its
//     float bits are traversal-dependent; it is locked to the sharded
//     answers at result-set level, and to SMJ by the main harness.)
//
//   - GM: the sharded scatter-gather of the forward-index baseline must be
//     bit-identical to the monolithic GM, result order included.
//
//   - Structure: the global phrase universe, vocabulary size, and
//     sub-collection sizes |D'| must be identical at every segment count.
//
// Any divergence is a hard failure recorded in Report.Failures.

import (
	"context"
	"fmt"
	"math"

	"phrasemine/internal/baseline"
	"phrasemine/internal/core"
	"phrasemine/internal/corpus"
	"phrasemine/internal/synth"
	"phrasemine/internal/topk"
)

// RunShardedEquivalence executes the sharded differential over every
// corpus in opt, building one sharded engine per segment count and
// checking it against the monolithic index. Fractions are pinned to full
// lists (the bit-identity contract is defined over them; partial-list
// fractions truncate per segment and are a documented approximation).
func RunShardedEquivalence(opt Options, segmentCounts []int) (*Report, error) {
	if opt.K <= 0 {
		opt.K = 5
	}
	if len(segmentCounts) == 0 {
		segmentCounts = []int{1, 2, 4, 7}
	}
	rep := &Report{
		MeanPrecision: map[Key]float64{},
		precisionSum:  map[Key]float64{},
		precisionN:    map[Key]int{},
	}
	for _, cfg := range opt.Corpora {
		if err := runShardedCorpus(rep, cfg, opt, segmentCounts); err != nil {
			return nil, fmt.Errorf("difftest: sharded corpus %s: %w", cfg.Name, err)
		}
	}
	return rep, nil
}

func runShardedCorpus(rep *Report, cfg synth.Config, opt Options, segmentCounts []int) error {
	s, err := prepare(cfg, opt)
	if err != nil {
		return err
	}
	smj, err := s.ix.BuildSMJ(1.0)
	if err != nil {
		return err
	}
	gm, err := s.ix.GM()
	if err != nil {
		return err
	}
	queries := append(append([][]string(nil), s.single...), s.multi...)

	for _, n := range segmentCounts {
		sx, err := core.BuildSharded(s.c, s.ix.BuildOptions(), n)
		if err != nil {
			return fmt.Errorf("segments=%d: %w", n, err)
		}
		if sx.NumPhrases() != s.ix.NumPhrases() {
			rep.failf("%s N=%d: phrase universe %d vs monolithic %d", cfg.Name, n, sx.NumPhrases(), s.ix.NumPhrases())
			continue
		}
		if sx.VocabSize() != s.ix.Inverted.VocabSize() {
			rep.failf("%s N=%d: vocabulary %d vs monolithic %d", cfg.Name, n, sx.VocabSize(), s.ix.Inverted.VocabSize())
		}
		for _, op := range []corpus.Operator{corpus.OpAND, corpus.OpOR} {
			for _, kws := range queries {
				q := corpus.NewQuery(op, kws...)
				checkShardedQuery(rep, cfg.Name, n, s.ix, smj, gm, sx, q, opt.K)
				rep.Cases++
			}
		}
	}
	return nil
}

// checkShardedQuery runs one query through every compared engine pair.
func checkShardedQuery(rep *Report, name string, n int, mono *core.Index, smj *core.SMJIndex, gm *baseline.GM, sx *core.ShardedIndex, q corpus.Query, k int) {
	want, _, err := mono.QuerySMJ(smj, q, topk.SMJOptions{K: k})
	if err != nil {
		rep.failf("%s N=%d %v: monolithic SMJ: %v", name, n, q, err)
		return
	}
	gotSMJ, err := sx.QuerySMJ(context.Background(), q, k, 1.0)
	if err != nil {
		rep.failf("%s N=%d %v: sharded SMJ: %v", name, n, q, err)
		return
	}
	if !bitIdentical(want, gotSMJ) {
		rep.failf("%s N=%d %v: sharded SMJ diverges: %v vs %v", name, n, q, want, gotSMJ)
	}
	gotNRA, err := sx.QueryNRA(context.Background(), q, k, 1.0)
	if err != nil {
		rep.failf("%s N=%d %v: sharded NRA: %v", name, n, q, err)
		return
	}
	if !bitIdentical(want, gotNRA) {
		rep.failf("%s N=%d %v: sharded NRA diverges from canonical: %v vs %v", name, n, q, want, gotNRA)
	}
	// The monolithic NRA's score bits are traversal-order dependent; lock
	// it to the sharded answer at result-set level.
	monoNRA, _, err := mono.QueryNRA(q, topk.NRAOptions{K: k})
	if err != nil {
		rep.failf("%s N=%d %v: monolithic NRA: %v", name, n, q, err)
		return
	}
	if a, b := idSet(monoNRA), idSet(gotNRA); !equalIDs(a, b) {
		rep.failf("%s N=%d %v: sharded NRA result set %v != monolithic NRA set %v", name, n, q, b, a)
	}

	wantGM, _, err := gm.TopK(q, k)
	if err != nil {
		rep.failf("%s N=%d %v: monolithic GM: %v", name, n, q, err)
		return
	}
	gotGM, err := sx.QueryGM(context.Background(), q, k)
	if err != nil {
		rep.failf("%s N=%d %v: sharded GM: %v", name, n, q, err)
		return
	}
	if len(wantGM) != len(gotGM) {
		rep.failf("%s N=%d %v: sharded GM returned %d results, monolithic %d", name, n, q, len(gotGM), len(wantGM))
		return
	}
	for i := range wantGM {
		if wantGM[i].Phrase != gotGM[i].Phrase ||
			math.Float64bits(wantGM[i].Score) != math.Float64bits(gotGM[i].Score) {
			rep.failf("%s N=%d %v: sharded GM row %d diverges: %+v vs %+v", name, n, q, i, wantGM[i], gotGM[i])
			return
		}
	}

	wantCount, err := mono.Inverted.SelectCount(q)
	if err != nil {
		rep.failf("%s N=%d %v: monolithic SelectCount: %v", name, n, q, err)
		return
	}
	gotCount, err := sx.SelectCount(q)
	if err != nil {
		rep.failf("%s N=%d %v: sharded SelectCount: %v", name, n, q, err)
		return
	}
	if wantCount != gotCount {
		rep.failf("%s N=%d %v: |D'| %d vs monolithic %d", name, n, q, gotCount, wantCount)
	}
}

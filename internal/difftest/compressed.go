package difftest

// Compressed-equivalence mode: the physical-layout analogue of the
// differential contract. The same corpus is indexed twice — once with raw
// slice lists, once with the block-compressed layout — and a third time by
// saving the raw index to a snapshot file and reopening it zero-copy via
// mmap. All three indexes must answer the harvested NRA, SMJ, and GM
// workloads bit-identically: compression and mmap are physical-layer
// decisions that must be invisible to query semantics. Any divergence is a
// hard failure recorded in Report.Failures.

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"

	"phrasemine/internal/core"
	"phrasemine/internal/corpus"
	"phrasemine/internal/synth"
	"phrasemine/internal/topk"
)

// RunCompressedEquivalence executes the compressed-vs-uncompressed (and
// mapped-vs-heap) differential over every corpus in opt.
func RunCompressedEquivalence(opt Options) (*Report, error) {
	if opt.K <= 0 {
		opt.K = 5
	}
	rep := &Report{
		MeanPrecision: map[Key]float64{},
		precisionSum:  map[Key]float64{},
		precisionN:    map[Key]int{},
	}
	for _, cfg := range opt.Corpora {
		if err := runCompressedCorpus(rep, cfg, opt); err != nil {
			return nil, fmt.Errorf("difftest: compressed corpus %s: %w", cfg.Name, err)
		}
	}
	return rep, nil
}

// variant is one physical layout of the shared logical index.
type variant struct {
	name string
	ix   *core.Index
	smj  map[float64]*core.SMJIndex
}

func runCompressedCorpus(rep *Report, cfg synth.Config, opt Options) error {
	s, err := prepare(cfg, opt)
	if err != nil {
		return err
	}

	// Compressed twin: identical build inputs, block-compressed layout.
	buildOpts := s.ix.BuildOptions()
	buildOpts.Compression = true
	compressed, err := core.Build(s.c, buildOpts)
	if err != nil {
		return err
	}

	// Mapped twin: the raw index persisted and reopened zero-copy.
	dir, err := os.MkdirTemp("", "difftest-mmap-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "index.snap")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := s.ix.WriteSnapshot(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	mapped, err := core.OpenSnapshotFile(path, opt.Workers)
	if err != nil {
		return err
	}
	defer mapped.Close()

	variants := []*variant{
		{name: "uncompressed", ix: s.ix},
		{name: "compressed", ix: compressed},
		{name: "mapped", ix: mapped},
	}
	for _, v := range variants {
		v.smj = map[float64]*core.SMJIndex{}
		for _, frac := range opt.Fractions {
			v.smj[frac], err = v.ix.BuildSMJ(frac)
			if err != nil {
				return err
			}
		}
	}

	base := variants[0]
	queries := append(append([][]string(nil), s.single...), s.multi...)
	for _, op := range []corpus.Operator{corpus.OpAND, corpus.OpOR} {
		for _, kws := range queries {
			q := corpus.NewQuery(op, kws...)
			for _, frac := range opt.Fractions {
				want, _, err := base.ix.QueryNRA(q, topk.NRAOptions{K: opt.K, Fraction: frac})
				if err != nil {
					rep.failf("%s %v@%g: NRA on %s: %v", cfg.Name, q, frac, base.name, err)
					continue
				}
				wantSMJ, _, err := base.ix.QuerySMJ(base.smj[frac], q, topk.SMJOptions{K: opt.K})
				if err != nil {
					rep.failf("%s %v@%g: SMJ on %s: %v", cfg.Name, q, frac, base.name, err)
					continue
				}
				for _, v := range variants[1:] {
					got, _, err := v.ix.QueryNRA(q, topk.NRAOptions{K: opt.K, Fraction: frac})
					if err != nil {
						rep.failf("%s %v@%g: NRA on %s: %v", cfg.Name, q, frac, v.name, err)
						continue
					}
					if !bitIdentical(want, got) {
						rep.failf("%s %v@%g: NRA on %s diverges: %v vs %v", cfg.Name, q, frac, v.name, want, got)
					}
					gotSMJ, _, err := v.ix.QuerySMJ(v.smj[frac], q, topk.SMJOptions{K: opt.K})
					if err != nil {
						rep.failf("%s %v@%g: SMJ on %s: %v", cfg.Name, q, frac, v.name, err)
						continue
					}
					if !bitIdentical(wantSMJ, gotSMJ) {
						rep.failf("%s %v@%g: SMJ on %s diverges: %v vs %v", cfg.Name, q, frac, v.name, wantSMJ, gotSMJ)
					}
				}
				rep.Cases++
			}

			// GM never touches the word lists; comparing it across the
			// variants exercises the lazily materialized forward/phrase-doc
			// sections of the mapped index instead.
			ga, err := base.ix.GM()
			if err != nil {
				return err
			}
			want, _, errA := ga.TopK(q, opt.K)
			for _, v := range variants[1:] {
				gb, err := v.ix.GM()
				if err != nil {
					rep.failf("%s %v: GM on %s: %v", cfg.Name, q, v.name, err)
					continue
				}
				got, _, errB := gb.TopK(q, opt.K)
				if (errA == nil) != (errB == nil) {
					rep.failf("%s %v: GM error asymmetry on %s: %v vs %v", cfg.Name, q, v.name, errA, errB)
					continue
				}
				if errA == nil && !reflect.DeepEqual(want, got) {
					rep.failf("%s %v: GM on %s diverges", cfg.Name, q, v.name)
				}
			}
			rep.Cases++
		}
	}
	return nil
}

// bitIdentical compares result slices with float64 bit equality, the
// strictest possible physical-layout contract.
func bitIdentical(a, b []topk.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Phrase != b[i].Phrase ||
			math.Float64bits(a[i].Score) != math.Float64bits(b[i].Score) ||
			math.Float64bits(a[i].Lower) != math.Float64bits(b[i].Lower) ||
			math.Float64bits(a[i].Upper) != math.Float64bits(b[i].Upper) {
			return false
		}
	}
	return true
}

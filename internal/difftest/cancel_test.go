package difftest

import "testing"

func TestDeadlineEquivalence(t *testing.T) {
	rep, err := RunDeadlineEquivalence(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Failures {
		t.Error(f)
	}
	if rep.Cases == 0 {
		t.Fatal("deadline differential ran zero cases")
	}
	t.Logf("deadline differential: %d cases, %d failures", rep.Cases, len(rep.Failures))
}

package difftest

// Packed-equivalence mode: the bit-packed block codec analogue of the
// compressed differential. The same corpus is indexed three ways — a
// varint-only compressed build (CodecVarint), a packed-capable build
// (CodecAuto, bit-packed frames wherever they win), and a zero-copy
// mapped snapshot of the packed build — and all three must answer the
// harvested NRA, SMJ, and GM workloads bit-identically (float bits and
// tie order). A shared-scan leg additionally asserts that routing block
// decodes through a ShareCache (core level) and grouping queries in
// MineBatch (public API level) changes nothing about the answers.

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"

	"phrasemine"
	"phrasemine/internal/core"
	"phrasemine/internal/corpus"
	"phrasemine/internal/plist"
	"phrasemine/internal/synth"
	"phrasemine/internal/topk"
)

// RunPackedEquivalence executes the packed-vs-varint (and mapped-packed,
// and shared-scan) differential over every corpus in opt.
func RunPackedEquivalence(opt Options) (*Report, error) {
	if opt.K <= 0 {
		opt.K = 5
	}
	rep := &Report{
		MeanPrecision: map[Key]float64{},
		precisionSum:  map[Key]float64{},
		precisionN:    map[Key]int{},
	}
	for _, cfg := range opt.Corpora {
		if err := runPackedCorpus(rep, cfg, opt); err != nil {
			return nil, fmt.Errorf("difftest: packed corpus %s: %w", cfg.Name, err)
		}
	}
	return rep, nil
}

func runPackedCorpus(rep *Report, cfg synth.Config, opt Options) error {
	s, err := prepare(cfg, opt)
	if err != nil {
		return err
	}

	// Varint twin: compressed layout with the packed codec disabled —
	// byte-compatible with the pre-packed container generation.
	buildOpts := s.ix.BuildOptions()
	buildOpts.Compression = true
	buildOpts.Codec = plist.CodecVarint
	varint, err := core.Build(s.c, buildOpts)
	if err != nil {
		return err
	}

	// Packed twin: same build, per-block codec choice enabled.
	buildOpts.Codec = plist.CodecAuto
	packed, err := core.Build(s.c, buildOpts)
	if err != nil {
		return err
	}
	if pb, _ := packed.MemStats().PackedBlocks, 0; pb == 0 {
		rep.failf("%s: packed build selected zero packed blocks — codec choice is inert", cfg.Name)
	}

	// Mapped twin: the packed build persisted and reopened zero-copy; the
	// codec choice must survive the snapshot round trip.
	dir, err := os.MkdirTemp("", "difftest-packed-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "index.snap")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := packed.WriteSnapshot(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	mapped, err := core.OpenSnapshotFile(path, opt.Workers)
	if err != nil {
		return err
	}
	defer mapped.Close()
	// The mapped index serves its inverted postings block-backed too, so
	// it must report at least the list blocks the heap build packed.
	if mb := mapped.MemStats().PackedBlocks; mb < packed.MemStats().PackedBlocks {
		rep.failf("%s: mapped snapshot reports %d packed blocks, build reported %d",
			cfg.Name, mb, packed.MemStats().PackedBlocks)
	}

	variants := []*variant{
		{name: "varint", ix: varint},
		{name: "packed", ix: packed},
		{name: "mapped-packed", ix: mapped},
	}
	for _, v := range variants {
		v.smj = map[float64]*core.SMJIndex{}
		for _, frac := range opt.Fractions {
			v.smj[frac], err = v.ix.BuildSMJ(frac)
			if err != nil {
				return err
			}
		}
	}

	base := variants[0]
	queries := append(append([][]string(nil), s.single...), s.multi...)
	for _, op := range []corpus.Operator{corpus.OpAND, corpus.OpOR} {
		for _, kws := range queries {
			q := corpus.NewQuery(op, kws...)
			for _, frac := range opt.Fractions {
				want, _, err := base.ix.QueryNRA(q, topk.NRAOptions{K: opt.K, Fraction: frac})
				if err != nil {
					rep.failf("%s %v@%g: NRA on %s: %v", cfg.Name, q, frac, base.name, err)
					continue
				}
				wantSMJ, _, err := base.ix.QuerySMJ(base.smj[frac], q, topk.SMJOptions{K: opt.K})
				if err != nil {
					rep.failf("%s %v@%g: SMJ on %s: %v", cfg.Name, q, frac, base.name, err)
					continue
				}
				for _, v := range variants[1:] {
					got, _, err := v.ix.QueryNRA(q, topk.NRAOptions{K: opt.K, Fraction: frac})
					if err != nil {
						rep.failf("%s %v@%g: NRA on %s: %v", cfg.Name, q, frac, v.name, err)
						continue
					}
					if !bitIdentical(want, got) {
						rep.failf("%s %v@%g: NRA on %s diverges: %v vs %v", cfg.Name, q, frac, v.name, want, got)
					}
					gotSMJ, _, err := v.ix.QuerySMJ(v.smj[frac], q, topk.SMJOptions{K: opt.K})
					if err != nil {
						rep.failf("%s %v@%g: SMJ on %s: %v", cfg.Name, q, frac, v.name, err)
						continue
					}
					if !bitIdentical(wantSMJ, gotSMJ) {
						rep.failf("%s %v@%g: SMJ on %s diverges: %v vs %v", cfg.Name, q, frac, v.name, wantSMJ, gotSMJ)
					}

					// Shared-scan leg: the same queries with block decodes
					// routed through a ShareCache, twice per cache so the
					// second pass is served entirely from shared entries.
					sc := plist.NewShareCache()
					for pass := 0; pass < 2; pass++ {
						gotSh, _, err := v.ix.QueryNRAShared(q, topk.NRAOptions{K: opt.K, Fraction: frac}, sc)
						if err != nil {
							rep.failf("%s %v@%g: shared NRA on %s: %v", cfg.Name, q, frac, v.name, err)
							continue
						}
						if !bitIdentical(want, gotSh) {
							rep.failf("%s %v@%g: shared NRA pass %d on %s diverges", cfg.Name, q, frac, pass, v.name)
						}
						gotShSMJ, _, err := v.ix.QuerySMJShared(v.smj[frac], q, topk.SMJOptions{K: opt.K}, sc)
						if err != nil {
							rep.failf("%s %v@%g: shared SMJ on %s: %v", cfg.Name, q, frac, v.name, err)
							continue
						}
						if !bitIdentical(wantSMJ, gotShSMJ) {
							rep.failf("%s %v@%g: shared SMJ pass %d on %s diverges", cfg.Name, q, frac, pass, v.name)
						}
					}
					if hits, _ := sc.Stats(); hits == 0 {
						rep.failf("%s %v@%g: shared scan on %s produced no cache hits", cfg.Name, q, frac, v.name)
					}
				}
				rep.Cases++
			}

			// GM never touches the word lists; it guards the rest of the
			// snapshot sections of the mapped packed index.
			ga, err := base.ix.GM()
			if err != nil {
				return err
			}
			want, _, errA := ga.TopK(q, opt.K)
			for _, v := range variants[1:] {
				gb, err := v.ix.GM()
				if err != nil {
					rep.failf("%s %v: GM on %s: %v", cfg.Name, q, v.name, err)
					continue
				}
				got, _, errB := gb.TopK(q, opt.K)
				if (errA == nil) != (errB == nil) {
					rep.failf("%s %v: GM error asymmetry on %s: %v vs %v", cfg.Name, q, v.name, errA, errB)
					continue
				}
				if errA == nil && !reflect.DeepEqual(want, got) {
					rep.failf("%s %v: GM on %s diverges", cfg.Name, q, v.name)
				}
			}
			rep.Cases++
		}
	}

	return runPackedBatchLeg(rep, cfg, s, opt, queries)
}

// runPackedBatchLeg asserts the public-API shared-scan contract: MineBatch
// with sharing enabled answers exactly like per-query Mine calls on the
// same compressed miner, and actually shares (the hit gauge moves).
func runPackedBatchLeg(rep *Report, cfg synth.Config, s *setup, opt Options, queries [][]string) error {
	tokens, err := s.c.TokenSlices()
	if err != nil {
		return err
	}
	texts := make([]string, len(tokens))
	for d, ts := range tokens {
		texts[d] = strings.Join(ts, " ")
	}
	miner, err := phrasemine.NewMinerFromTexts(texts, phrasemine.Config{
		Compression: true,
		Workers:     opt.Workers,
	})
	if err != nil {
		return err
	}
	defer miner.Close()

	// Duplicate every query so grouping has something to share, and
	// interleave the duplicates to exercise group planning.
	var items []phrasemine.BatchItem
	for _, op := range []phrasemine.Operator{phrasemine.AND, phrasemine.OR} {
		for _, kws := range queries {
			items = append(items,
				phrasemine.BatchItem{Keywords: kws, Op: op, Options: phrasemine.QueryOptions{K: opt.K}},
				phrasemine.BatchItem{Keywords: kws, Op: op, Options: phrasemine.QueryOptions{K: opt.K, Algorithm: phrasemine.AlgoSMJ, ListFraction: 0.5}},
				phrasemine.BatchItem{Keywords: kws, Op: op, Options: phrasemine.QueryOptions{K: opt.K}},
			)
		}
	}
	batch, err := miner.MineBatchOpts(items, phrasemine.BatchOptions{MaxGroupSize: 8})
	if err != nil {
		return err
	}
	for i, item := range items {
		want, wantErr := miner.Mine(item.Keywords, item.Op, item.Options)
		got := batch[i]
		if (wantErr == nil) != (got.Err == nil) {
			rep.failf("%s batch[%d] %v: error asymmetry: %v vs %v", cfg.Name, i, item.Keywords, wantErr, got.Err)
			continue
		}
		if wantErr != nil {
			continue
		}
		if !sameResults(want, got.Results) {
			rep.failf("%s batch[%d] %v: shared batch diverges from Mine: %v vs %v",
				cfg.Name, i, item.Keywords, want, got.Results)
		}
		rep.Cases++
	}
	if hits := miner.IndexStats().SharedScanHits; hits == 0 {
		rep.failf("%s: MineBatch over %d grouped queries recorded no shared-scan hits", cfg.Name, len(items))
	}
	return nil
}

// sameResults compares public mining results with float64 bit equality —
// same phrases, same order, same score bits.
func sameResults(a, b []phrasemine.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Phrase != b[i].Phrase ||
			math.Float64bits(a[i].Score) != math.Float64bits(b[i].Score) ||
			math.Float64bits(a[i].Interestingness) != math.Float64bits(b[i].Interestingness) {
			return false
		}
	}
	return true
}

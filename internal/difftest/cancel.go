package difftest

// Deadline-equivalence mode: the cancellation analogue of the
// differential contract. Threading a live context through a query must
// never change its answer — cancellation either replaces the whole result
// with ctx.Err() or leaves it untouched, bit for bit. The harvested
// workloads run twice on the same miners, once with context.Background()
// and once under a generous-but-finite deadline, across both engines the
// cancellation plumbing touches:
//
//   - A packed compressed monolithic miner (the cursor-level NRA/SMJ
//     cancellation points).
//   - A sharded multi-segment miner (the scatter-gather path), including
//     the Partial query knob: with an unexpired deadline a
//     partial-capable query must return the complete answer, unmarked.
//
// A pre-canceled leg pins the other half of the contract: a canceled
// context yields ctx.Err() and no results on every engine and algorithm.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"phrasemine"
	"phrasemine/internal/synth"
)

// deadlineGenerous is the finite deadline the equivalence leg runs
// under: long enough that no test-sized query expires (expiry would
// surface as an error, failing the run), short enough to prove the
// deadline plumbing is live on every path.
const deadlineGenerous = 5 * time.Minute

// RunDeadlineEquivalence executes the deadline differential over every
// corpus in opt.
func RunDeadlineEquivalence(opt Options) (*Report, error) {
	if opt.K <= 0 {
		opt.K = 5
	}
	rep := &Report{
		MeanPrecision: map[Key]float64{},
		precisionSum:  map[Key]float64{},
		precisionN:    map[Key]int{},
	}
	for _, cfg := range opt.Corpora {
		if err := runDeadlineCorpus(rep, cfg, opt); err != nil {
			return nil, fmt.Errorf("difftest: deadline corpus %s: %w", cfg.Name, err)
		}
	}
	return rep, nil
}

func runDeadlineCorpus(rep *Report, cfg synth.Config, opt Options) error {
	s, err := prepare(cfg, opt)
	if err != nil {
		return err
	}
	tokens, err := s.c.TokenSlices()
	if err != nil {
		return err
	}
	texts := make([]string, len(tokens))
	for d, ts := range tokens {
		texts[d] = strings.Join(ts, " ")
	}

	packed, err := phrasemine.NewMinerFromTexts(texts, phrasemine.Config{
		Compression: true,
		Workers:     opt.Workers,
	})
	if err != nil {
		return err
	}
	defer packed.Close()
	sharded, err := phrasemine.NewMinerFromTexts(texts, phrasemine.Config{
		Segments: 4,
		Workers:  opt.Workers,
	})
	if err != nil {
		return err
	}
	defer sharded.Close()

	miners := []struct {
		name string
		m    *phrasemine.Miner
	}{
		{"packed", packed},
		{"sharded", sharded},
	}
	algos := []phrasemine.Algorithm{phrasemine.AlgoNRA, phrasemine.AlgoSMJ}
	queries := append(append([][]string(nil), s.single...), s.multi...)

	canceled, cancelNow := context.WithCancel(context.Background())
	cancelNow()

	for _, op := range []phrasemine.Operator{phrasemine.AND, phrasemine.OR} {
		for _, kws := range queries {
			for _, eng := range miners {
				for _, algo := range algos {
					qopt := phrasemine.QueryOptions{K: opt.K, Algorithm: algo}
					want, wantErr := eng.m.Mine(kws, op, qopt)

					ctx, cancel := context.WithTimeout(context.Background(), deadlineGenerous)
					got, gotErr := eng.m.MineCtx(ctx, kws, op, qopt)
					cancel()
					if (wantErr == nil) != (gotErr == nil) {
						rep.failf("%s %s/%s %v: error asymmetry under deadline: %v vs %v",
							cfg.Name, eng.name, algo, kws, wantErr, gotErr)
						continue
					}
					if wantErr == nil && !sameResults(want, got) {
						rep.failf("%s %s/%s %v: deadline run diverges from background run",
							cfg.Name, eng.name, algo, kws)
					}

					// The pre-canceled half: ctx.Err() and nothing else.
					if _, err := eng.m.MineCtx(canceled, kws, op, qopt); !errors.Is(err, context.Canceled) {
						rep.failf("%s %s/%s %v: canceled context returned %v, want context.Canceled",
							cfg.Name, eng.name, algo, kws, err)
					}
				}

				// Partial knob under an unexpired deadline: the complete
				// answer, unmarked, identical to the plain run.
				qopt := phrasemine.QueryOptions{K: opt.K, Algorithm: phrasemine.AlgoSMJ, Partial: true}
				want, wantErr := eng.m.Mine(kws, op, phrasemine.QueryOptions{K: opt.K, Algorithm: phrasemine.AlgoSMJ})
				ctx, cancel := context.WithTimeout(context.Background(), deadlineGenerous)
				mined, gotErr := eng.m.MineDetailed(ctx, kws, op, qopt)
				cancel()
				if (wantErr == nil) != (gotErr == nil) {
					rep.failf("%s %s partial %v: error asymmetry: %v vs %v", cfg.Name, eng.name, kws, wantErr, gotErr)
					continue
				}
				if wantErr != nil {
					continue
				}
				if mined.Degraded {
					rep.failf("%s %s partial %v: unexpired deadline marked degraded (%d/%d segments)",
						cfg.Name, eng.name, kws, mined.SegmentsDone, mined.SegmentsTotal)
				}
				if !sameResults(want, mined.Results) {
					rep.failf("%s %s partial %v: partial-capable run diverges from plain run", cfg.Name, eng.name, kws)
				}
			}
			rep.Cases++
		}
	}
	return nil
}

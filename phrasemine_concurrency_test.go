package phrasemine

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// concurrencyQueries exercises every algorithm and both operators, at full
// and truncated lists, against the newsCorpus topics.
func concurrencyQueries() []BatchItem {
	return []BatchItem{
		{Keywords: []string{"trade"}, Op: OR},
		{Keywords: []string{"trade", "reserves"}, Op: OR},
		{Keywords: []string{"trade", "reserves"}, Op: AND},
		{Keywords: []string{"database", "systems"}, Op: OR, Options: QueryOptions{Algorithm: AlgoSMJ}},
		{Keywords: []string{"database", "systems"}, Op: AND, Options: QueryOptions{Algorithm: AlgoNRA}},
		{Keywords: []string{"economic", "minister"}, Op: OR, Options: QueryOptions{ListFraction: 0.4}},
		{Keywords: []string{"query", "optimization"}, Op: AND, Options: QueryOptions{Algorithm: AlgoGM}},
		{Keywords: []string{"query", "optimization"}, Op: OR, Options: QueryOptions{Algorithm: AlgoExact}},
	}
}

// TestConcurrentMineMatchesSequential hammers Mine from many goroutines
// (run under -race in CI) and checks every concurrent answer equals the
// sequentially computed reference.
func TestConcurrentMineMatchesSequential(t *testing.T) {
	m := newTestMiner(t)
	items := concurrencyQueries()
	want := make([][]Result, len(items))
	for i, it := range items {
		res, err := m.Mine(it.Keywords, it.Op, it.Options)
		if err != nil {
			t.Fatalf("reference query %d: %v", i, err)
		}
		want[i] = res
	}

	const goroutines = 16
	const rounds = 10
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (g + r) % len(items)
				res, err := m.Mine(items[i].Keywords, items[i].Op, items[i].Options)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d query %d: %w", g, i, err)
					return
				}
				if !reflect.DeepEqual(res, want[i]) {
					errs <- fmt.Errorf("goroutine %d query %d: concurrent result diverges: %v vs %v", g, i, res, want[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentMineWithUpdates interleaves queries with Add/Remove/Flush
// from other goroutines: queries must never error or tear, and the final
// flushed state must reflect every update.
func TestConcurrentMineWithUpdates(t *testing.T) {
	m := newTestMiner(t)
	baseDocs := m.NumDocuments()
	const writers = 2
	const docsPerWriter = 6
	const readers = 8

	var readersWG, writersWG sync.WaitGroup
	errs := make(chan error, readers+writers)
	stop := make(chan struct{})
	for g := 0; g < readers; g++ {
		readersWG.Add(1)
		go func(g int) {
			defer readersWG.Done()
			items := concurrencyQueries()
			for r := 0; ; r++ {
				select {
				case <-stop:
					return
				default:
				}
				it := items[(g+r)%len(items)]
				if _, err := m.Mine(it.Keywords, it.Op, it.Options); err != nil {
					errs <- fmt.Errorf("reader %d: %w", g, err)
					return
				}
			}
		}(g)
	}
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < docsPerWriter; i++ {
				m.Add(Document{Text: "trade reserves economic minister statement figures"})
			}
			if err := m.Flush(); err != nil {
				errs <- fmt.Errorf("writer %d flush: %w", w, err)
			}
		}(w)
	}
	writersWG.Wait()
	close(stop)
	readersWG.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := m.NumDocuments(); got != baseDocs+writers*docsPerWriter {
		t.Fatalf("after concurrent updates: %d documents, want %d", got, baseDocs+writers*docsPerWriter)
	}
}

// TestMineBatch checks batch answers equal individual Mine calls, in input
// order, and that a bad query fails only its own slot.
func TestMineBatch(t *testing.T) {
	m := newTestMiner(t)
	items := concurrencyQueries()
	items = append(items, BatchItem{Keywords: nil, Op: OR}) // invalid: no keywords

	got := m.MineBatch(items)
	if len(got) != len(items) {
		t.Fatalf("MineBatch returned %d results for %d items", len(got), len(items))
	}
	for i, it := range items[:len(items)-1] {
		want, err := m.Mine(it.Keywords, it.Op, it.Options)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if got[i].Err != nil {
			t.Errorf("batch slot %d errored: %v", i, got[i].Err)
			continue
		}
		if !reflect.DeepEqual(got[i].Results, want) {
			t.Errorf("batch slot %d diverges from Mine: %v vs %v", i, got[i].Results, want)
		}
	}
	if last := got[len(got)-1]; last.Err == nil {
		t.Error("invalid query slot did not report an error")
	}
	if empty := m.MineBatch(nil); len(empty) != 0 {
		t.Errorf("MineBatch(nil) = %v", empty)
	}
}

// TestConcurrentShardedMineWithUpdates hammers one sharded miner with
// concurrent Mine and MineBatch calls while writers Add documents and
// Flush the write segment (run under -race in CI): queries must never
// error or tear across the segment swap, and the final flushed state must
// reflect every update.
func TestConcurrentShardedMineWithUpdates(t *testing.T) {
	m, err := NewMinerFromTexts(newsCorpus(), shardedTestConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	baseDocs := m.NumDocuments()
	const writers = 2
	const docsPerWriter = 5
	const readers = 8

	var readersWG, writersWG sync.WaitGroup
	errs := make(chan error, readers+writers)
	stop := make(chan struct{})
	for g := 0; g < readers; g++ {
		readersWG.Add(1)
		go func(g int) {
			defer readersWG.Done()
			items := concurrencyQueries()
			for r := 0; ; r++ {
				select {
				case <-stop:
					return
				default:
				}
				if g%2 == 0 {
					it := items[(g+r)%len(items)]
					if _, err := m.Mine(it.Keywords, it.Op, it.Options); err != nil {
						errs <- fmt.Errorf("sharded reader %d: %w", g, err)
						return
					}
					continue
				}
				for i, br := range m.MineBatch(items) {
					if br.Err != nil {
						errs <- fmt.Errorf("sharded batch reader %d item %d: %w", g, i, br.Err)
						return
					}
				}
			}
		}(g)
	}
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < docsPerWriter; i++ {
				m.Add(Document{Text: "trade reserves economic minister statement figures"})
			}
			if err := m.Flush(); err != nil {
				errs <- fmt.Errorf("sharded writer %d flush: %w", w, err)
			}
		}(w)
	}
	writersWG.Wait()
	close(stop)
	readersWG.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := m.NumDocuments(); got != baseDocs+writers*docsPerWriter {
		t.Fatalf("after concurrent sharded updates: %d documents, want %d", got, baseDocs+writers*docsPerWriter)
	}

	// Post-update answers still match a monolithic miner over the same
	// logical corpus (updates appended to the write segment).
	ref := append(newsCorpus(), make([]string, 0)...)
	for i := 0; i < writers*docsPerWriter; i++ {
		ref = append(ref, "trade reserves economic minister statement figures")
	}
	mono, err := NewMinerFromTexts(ref, Config{
		MinPhraseWords: 1, MaxPhraseWords: 4, MinDocFreq: 3, DropStopwordPhrases: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := mono.Mine([]string{"trade", "reserves"}, OR, QueryOptions{K: 8, Algorithm: AlgoSMJ})
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Mine([]string{"trade", "reserves"}, OR, QueryOptions{K: 8, Algorithm: AlgoNRA})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sharded post-update answer diverges:\n got %v\nwant %v", got, want)
	}
}

// TestConcurrentShardedMineMatchesSequential checks concurrent sharded
// answers against sequentially computed references across all algorithms.
func TestConcurrentShardedMineMatchesSequential(t *testing.T) {
	m, err := NewMinerFromTexts(newsCorpus(), shardedTestConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	items := concurrencyQueries()
	want := make([][]Result, len(items))
	for i, it := range items {
		res, err := m.Mine(it.Keywords, it.Op, it.Options)
		if err != nil {
			t.Fatalf("reference query %d: %v", i, err)
		}
		want[i] = res
	}
	const goroutines = 12
	const rounds = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (g + r) % len(items)
				res, err := m.Mine(items[i].Keywords, items[i].Op, items[i].Options)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d query %d: %w", g, i, err)
					return
				}
				if !reflect.DeepEqual(res, want[i]) {
					errs <- fmt.Errorf("goroutine %d query %d: concurrent sharded result diverges", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestParallelMinerIdenticalResults builds the same corpus sequentially
// and with many workers and requires identical public-API answers.
func TestParallelMinerIdenticalResults(t *testing.T) {
	cfg := Config{MinPhraseWords: 1, MaxPhraseWords: 4, MinDocFreq: 3, DropStopwordPhrases: true}
	seqCfg, parCfg := cfg, cfg
	seqCfg.Workers = 1
	parCfg.Workers = 8
	parCfg.Shards = 13

	texts := newsCorpus()
	seq, err := NewMinerFromTexts(texts, seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewMinerFromTexts(texts, parCfg)
	if err != nil {
		t.Fatal(err)
	}
	if seq.NumPhrases() != par.NumPhrases() || seq.VocabSize() != par.VocabSize() {
		t.Fatalf("index shape diverges: |P| %d vs %d, |W| %d vs %d",
			seq.NumPhrases(), par.NumPhrases(), seq.VocabSize(), par.VocabSize())
	}
	for i, it := range concurrencyQueries() {
		a, err := seq.Mine(it.Keywords, it.Op, it.Options)
		if err != nil {
			t.Fatalf("sequential query %d: %v", i, err)
		}
		b, err := par.Mine(it.Keywords, it.Op, it.Options)
		if err != nil {
			t.Fatalf("parallel query %d: %v", i, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("query %d: parallel-built miner diverges: %v vs %v", i, a, b)
		}
	}
}

package phrasemine

// Crash-consistency matrix for the durable mutation WAL: a scripted
// mutation sequence (adds, removals, flush checkpoints) runs over a
// deterministic in-memory filesystem, the process "crashes" at every
// single IO operation in turn (losing all un-fsynced state, including
// torn half-synced tails), and each crashed state is recovered the way a
// restarted server would — load the surviving snapshot, replay the
// surviving log, flush. The invariants checked at every crash point:
//
//  1. Every acknowledged mutation survives (an acked Add/Remove returned
//     only after its record was fsynced).
//  2. At most the one in-flight (un-acked, errored) mutation may appear
//     beyond the acked prefix; nothing else, and never half of one.
//  3. Recovery itself never fails and never reports corruption — crash
//     damage is always a cleanly truncatable tail.
//  4. The recovered miner answers bit-identically to a miner built
//     cleanly from the surviving documents.

import (
	"bytes"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"phrasemine/internal/diskio"
	"phrasemine/internal/diskio/faultfs"
)

// walCorpus is a tiny three-topic corpus: small enough that hundreds of
// recoveries stay fast, repetitive enough that every topic phrase clears
// the document-frequency threshold.
func walCorpus() []string {
	var docs []string
	for i := 0; i < 4; i++ {
		docs = append(docs, fmt.Sprintf("trade reserves economic minister statement %d. economic minister spoke.", i))
		docs = append(docs, fmt.Sprintf("database systems query optimization figures %d. query optimization improves.", i))
		docs = append(docs, fmt.Sprintf("weather sports local report %d.", i))
	}
	return docs
}

func walTestConfig() Config {
	return Config{
		MinPhraseWords:      1,
		MaxPhraseWords:      3,
		MinDocFreq:          2,
		DropStopwordPhrases: true,
	}
}

// walOp is one scripted step: a mutation or a flush checkpoint.
type walOp struct {
	kind string // "add", "remove" or "flush"
	text string
	doc  int
}

func (op walOp) mutation() bool { return op.kind != "flush" }

// walScript mixes mutations with checkpoints so crash points land in
// every phase: logged-but-unflushed, mid-checkpoint, and post-truncate.
func walScript() []walOp {
	return []walOp{
		{kind: "add", text: "solar storm warning issued. solar storm warning repeated."},
		{kind: "remove", doc: 0},
		{kind: "add", text: "harvest festival parade delayed. harvest festival parade resumed."},
		{kind: "flush"},
		{kind: "add", text: "midnight regatta results posted. midnight regatta results archived."},
		{kind: "remove", doc: 1},
		{kind: "flush"},
	}
}

// walModel simulates the surviving document texts after a prefix of the
// script (plus recovery's final flush): pending removals mark base
// documents, pending additions queue, and each flush keeps survivors in
// order with the additions appended — the engine's documented order.
func walModel(base []string, ops []walOp) []string {
	docs := append([]string(nil), base...)
	var added []string
	removed := map[int]bool{}
	flush := func() {
		var next []string
		for i, d := range docs {
			if !removed[i] {
				next = append(next, d)
			}
		}
		docs = append(next, added...)
		added = nil
		removed = map[int]bool{}
	}
	for _, op := range ops {
		switch op.kind {
		case "add":
			added = append(added, op.text)
		case "remove":
			removed[op.doc] = true
		case "flush":
			flush()
		}
	}
	flush() // recovery always ends in a Flush
	return docs
}

// walFingerprint captures a miner's externally visible answers: document
// count plus full top-10 results (phrases and float-exact scores) for a
// fixed query set.
type walFingerprint struct {
	numDocs int
	answers map[string][]Result
}

var walQueries = [][]string{
	{"trade", "reserves"},
	{"query", "optimization"},
	{"economic"},
}

func fingerprintMiner(t *testing.T, m *Miner) walFingerprint {
	t.Helper()
	fp := walFingerprint{numDocs: m.NumDocuments(), answers: map[string][]Result{}}
	for _, q := range walQueries {
		res, err := m.Mine(q, OR, QueryOptions{K: 10})
		if err != nil {
			t.Fatalf("mining %v: %v", q, err)
		}
		fp.answers[strings.Join(q, "+")] = res
	}
	return fp
}

const (
	walTestSnap = "snap/index.snap"
	walTestDir  = "wal"
)

// walSetup establishes the pre-crash durable state inside mem: a built
// index checkpointed to a snapshot (carrying its WAL marker) plus an
// empty generation-1 log.
func walSetup(t *testing.T, mem *faultfs.Mem) {
	t.Helper()
	m, err := NewMinerFromTexts(walCorpus(), walTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.EnableWAL(WALConfig{Dir: walTestDir, SnapshotPath: walTestSnap, FS: mem}); err != nil {
		t.Fatal(err)
	}
	if err := diskio.WriteToFileAtomicFS(mem, walTestSnap, 0o644, m.Save); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

// walScriptRun loads the miner from mem's snapshot, enables the WAL
// through the fault wrapper, and executes the script until it completes
// or the injected crash makes an operation fail. It returns the acked
// prefix and the errored in-flight mutation (nil if none, e.g. when a
// flush or the WAL open itself hit the crash).
func walScriptRun(t *testing.T, mem *faultfs.Mem, ffs *faultfs.Fault, mode string) (acked []walOp, inflight *walOp) {
	t.Helper()
	raw, err := mem.ReadFile(walTestSnap)
	if err != nil {
		t.Fatal(err)
	}
	m, err := LoadMiner(bytes.NewReader(raw), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close() // the crashed FS may error; recovery is what matters
	if _, err := m.EnableWAL(WALConfig{Dir: walTestDir, Sync: mode, SnapshotPath: walTestSnap, FS: ffs}); err != nil {
		return nil, nil // crashed before any mutation could be acked
	}
	for _, op := range walScript() {
		op := op
		var err error
		switch op.kind {
		case "add":
			err = m.Add(Document{Text: op.text})
		case "remove":
			err = m.Remove(op.doc)
		case "flush":
			err = m.Flush()
		}
		if err != nil {
			if op.mutation() {
				inflight = &op
			}
			return acked, inflight
		}
		acked = append(acked, op)
	}
	return acked, nil
}

// walRecover crashes mem, materializes its durable state onto the real
// filesystem, and recovers exactly like a restarted server: load the
// snapshot, replay the log, flush. Any failure here is a lost-durability
// bug, not an acceptable outcome.
func walRecover(t *testing.T, mem *faultfs.Mem, label string) *Miner {
	t.Helper()
	mem.Crash()
	root := t.TempDir()
	if err := mem.ExportDurable(root); err != nil {
		t.Fatalf("%s: exporting durable state: %v", label, err)
	}
	rec, err := LoadMinerFile(filepath.Join(root, walTestSnap), 2)
	if err != nil {
		t.Fatalf("%s: surviving snapshot does not load: %v", label, err)
	}
	if _, err := rec.EnableWAL(WALConfig{Dir: filepath.Join(root, walTestDir)}); err != nil {
		rec.Close()
		t.Fatalf("%s: surviving wal does not replay: %v", label, err)
	}
	if err := rec.Flush(); err != nil {
		rec.Close()
		t.Fatalf("%s: recovery flush: %v", label, err)
	}
	return rec
}

// TestWALConfigEnablesLogging covers the Config-driven path on the real
// filesystem: WALDir arms logging at build time, and a rebuild over the
// same directory replays the surviving mutations into the pending delta
// (a fresh build carries no marker, so everything replays).
func TestWALConfigEnablesLogging(t *testing.T) {
	dir := t.TempDir()
	cfg := walTestConfig()
	cfg.WALDir = filepath.Join(dir, "wal")
	cfg.WALSync = "always"
	m, err := NewMinerFromTexts(walCorpus(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Add(Document{Text: "solar storm warning issued."}); err != nil {
		t.Fatal(err)
	}
	stats, ok := m.WALStats()
	if !ok || stats.Records != 1 || stats.Mode != "always" {
		t.Fatalf("wal stats after one add: %+v ok=%v", stats, ok)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulated restart: same raw input, same WAL directory.
	m2, err := NewMinerFromTexts(walCorpus(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if n := m2.PendingUpdates(); n != 1 {
		t.Fatalf("replayed %d pending updates, want 1", n)
	}
	stats, _ = m2.WALStats()
	if stats.Replayed != 1 {
		t.Fatalf("wal stats after replay: %+v", stats)
	}
}

// TestWALDiscardPendingUpdatesTruncatesLog covers the recovery-path
// interplay: discarded updates must also leave the log, so a restart
// cannot resurrect a delta the operator explicitly dropped, and Save's
// "updates pending" refusal clears in the same call.
func TestWALDiscardPendingUpdatesTruncatesLog(t *testing.T) {
	mem := faultfs.NewMem()
	walSetup(t, mem)
	raw, err := mem.ReadFile(walTestSnap)
	if err != nil {
		t.Fatal(err)
	}
	m, err := LoadMiner(bytes.NewReader(raw), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.EnableWAL(WALConfig{Dir: walTestDir, SnapshotPath: walTestSnap, FS: mem}); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(Document{Text: "solar storm warning issued."}); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove(0); err != nil {
		t.Fatal(err)
	}
	if err := m.Save(new(bytes.Buffer)); err == nil || !strings.Contains(err.Error(), "pending") {
		t.Fatalf("Save with pending updates: %v", err)
	}
	if err := m.DiscardPendingUpdates(); err != nil {
		t.Fatal(err)
	}
	if n := m.PendingUpdates(); n != 0 {
		t.Fatalf("%d updates survive the discard", n)
	}
	if err := m.Save(new(bytes.Buffer)); err != nil {
		t.Fatalf("Save after discard: %v", err)
	}
	if stats, _ := m.WALStats(); stats.Records != 0 {
		t.Fatalf("log still holds %d records after discard", stats.Records)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// Restart: nothing may replay.
	m2, err := LoadMiner(bytes.NewReader(raw), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	replayed, err := m2.EnableWAL(WALConfig{Dir: walTestDir, FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 0 || m2.PendingUpdates() != 0 {
		t.Fatalf("discarded updates resurrected: replayed=%d pending=%d", replayed, m2.PendingUpdates())
	}
}

// TestWALShardedCheckpointRecovery runs the crash matrix over a sharded
// miner: mutations route through the same WAL, Flush checkpoints into a
// manifest directory (generation-fresh segment files, marker in the
// manifest), and recovery goes through OpenShardedMiner. Answers are
// compared against clean monolithic builds — the sharded engine's
// bit-identical contract.
func TestWALShardedCheckpointRecovery(t *testing.T) {
	base := walCorpus()
	cfg := walTestConfig()
	cfg.Segments = 2
	const manifestDir = "shards"

	setup := func(t *testing.T, mem *faultfs.Mem) {
		t.Helper()
		m, err := NewMinerFromTexts(base, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.EnableWAL(WALConfig{Dir: walTestDir, SnapshotPath: manifestDir, FS: mem}); err != nil {
			t.Fatal(err)
		}
		m.mu.Lock()
		err = m.saveManifestLocked(mem, manifestDir, m.currentWALMarker())
		m.mu.Unlock()
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
	}
	run := func(t *testing.T, mem *faultfs.Mem, ffs *faultfs.Fault) (acked []walOp, inflight *walOp) {
		t.Helper()
		// Load through the volatile view (pre-crash state), like a
		// process that has been running since before the faults began.
		root := t.TempDir()
		for _, name := range []string{diskio.ManifestFileName, "segment-000.snap", "segment-001.snap"} {
			raw, err := mem.ReadFile(manifestDir + "/" + name)
			if err != nil {
				t.Fatal(err)
			}
			if err := diskio.WriteFileAtomic(filepath.Join(root, name), raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		m, err := OpenShardedMiner(root, 2)
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		if _, err := m.EnableWAL(WALConfig{Dir: walTestDir, Sync: "always", SnapshotPath: manifestDir, FS: ffs}); err != nil {
			return nil, nil
		}
		for _, op := range walScript() {
			op := op
			var err error
			switch op.kind {
			case "add":
				err = m.Add(Document{Text: op.text})
			case "remove":
				err = m.Remove(op.doc)
			case "flush":
				err = m.Flush()
			}
			if err != nil {
				if op.mutation() {
					inflight = &op
				}
				return acked, inflight
			}
			acked = append(acked, op)
		}
		return acked, nil
	}
	recover := func(t *testing.T, mem *faultfs.Mem, label string) *Miner {
		t.Helper()
		mem.Crash()
		root := t.TempDir()
		if err := mem.ExportDurable(root); err != nil {
			t.Fatalf("%s: exporting durable state: %v", label, err)
		}
		rec, err := OpenShardedMiner(filepath.Join(root, manifestDir), 2)
		if err != nil {
			t.Fatalf("%s: surviving manifest does not open: %v", label, err)
		}
		if _, err := rec.EnableWAL(WALConfig{Dir: filepath.Join(root, walTestDir)}); err != nil {
			rec.Close()
			t.Fatalf("%s: surviving wal does not replay: %v", label, err)
		}
		if err := rec.Flush(); err != nil {
			rec.Close()
			t.Fatalf("%s: recovery flush: %v", label, err)
		}
		return rec
	}

	refCache := map[string]walFingerprint{}
	reference := func(docs []string) walFingerprint {
		key := strings.Join(docs, "\x1f")
		if fp, ok := refCache[key]; ok {
			return fp
		}
		rm, err := NewMinerFromTexts(docs, walTestConfig())
		if err != nil {
			t.Fatal(err)
		}
		fp := fingerprintMiner(t, rm)
		rm.Close()
		refCache[key] = fp
		return fp
	}

	mem := faultfs.NewMem()
	setup(t, mem)
	ffs := faultfs.NewFault(mem)
	acked, inflight := run(t, mem, ffs)
	if inflight != nil || len(acked) != len(walScript()) {
		t.Fatalf("clean run failed: acked %d/%d ops", len(acked), len(walScript()))
	}
	totalOps := ffs.Ops()
	rec := recover(t, mem, "clean")
	got := fingerprintMiner(t, rec)
	rec.Close()
	if want := reference(walModel(base, acked)); !reflect.DeepEqual(got, want) {
		t.Fatalf("clean run: recovered sharded answers differ from monolithic build over survivors (%d vs %d docs)", got.numDocs, want.numDocs)
	}

	// The sharded matrix samples every third IO step (plus the final
	// one): each recovery re-opens and re-merges every segment, so the
	// full enumeration the monolithic matrix runs would dominate the
	// test suite for no added coverage of the shared WAL logic.
	for crashAt := 1; crashAt <= totalOps; crashAt += 3 {
		label := fmt.Sprintf("crash@%d/%d", crashAt, totalOps)
		mem := faultfs.NewMem()
		setup(t, mem)
		ffs := faultfs.NewFault(mem)
		ffs.CrashAt(crashAt)
		acked, inflight := run(t, mem, ffs)
		rec := recover(t, mem, label)
		got := fingerprintMiner(t, rec)
		rec.Close()
		candidates := [][]walOp{acked}
		if inflight != nil {
			candidates = append(candidates, append(append([]walOp(nil), acked...), *inflight))
		}
		matched := false
		for _, cand := range candidates {
			if reflect.DeepEqual(got, reference(walModel(base, cand))) {
				matched = true
				break
			}
		}
		if !matched {
			t.Fatalf("%s: recovered state (%d docs) matches neither the %d acked ops nor acked+inflight (inflight=%v)",
				label, got.numDocs, len(acked), inflight)
		}
	}
}

func TestWALCrashConsistencyMatrix(t *testing.T) {
	base := walCorpus()
	refCache := map[string]walFingerprint{}
	reference := func(docs []string) walFingerprint {
		key := strings.Join(docs, "\x1f")
		if fp, ok := refCache[key]; ok {
			return fp
		}
		rm, err := NewMinerFromTexts(docs, walTestConfig())
		if err != nil {
			t.Fatal(err)
		}
		fp := fingerprintMiner(t, rm)
		rm.Close()
		refCache[key] = fp
		return fp
	}

	for _, mode := range []string{"always", "batch"} {
		t.Run(mode, func(t *testing.T) {
			// Clean run: validates the document-order model against the
			// real engine and sizes the crash matrix.
			mem := faultfs.NewMem()
			walSetup(t, mem)
			ffs := faultfs.NewFault(mem)
			acked, inflight := walScriptRun(t, mem, ffs, mode)
			if inflight != nil || len(acked) != len(walScript()) {
				t.Fatalf("clean run failed: acked %d/%d ops", len(acked), len(walScript()))
			}
			totalOps := ffs.Ops()
			if totalOps < 20 {
				t.Fatalf("suspiciously small crash matrix: %d IO ops", totalOps)
			}
			t.Logf("crash matrix: %d IO ops", totalOps)
			rec := walRecover(t, mem, "clean")
			got := fingerprintMiner(t, rec)
			rec.Close()
			if want := reference(walModel(base, acked)); !reflect.DeepEqual(got, want) {
				t.Fatalf("clean run: recovered answers differ from clean build over survivors (%d vs %d docs)", got.numDocs, want.numDocs)
			}

			for crashAt := 1; crashAt <= totalOps; crashAt++ {
				label := fmt.Sprintf("crash@%d/%d", crashAt, totalOps)
				mem := faultfs.NewMem()
				walSetup(t, mem)
				ffs := faultfs.NewFault(mem)
				ffs.CrashAt(crashAt)
				acked, inflight := walScriptRun(t, mem, ffs, mode)
				rec := walRecover(t, mem, label)
				got := fingerprintMiner(t, rec)
				rec.Close()

				// The recovered state must be the acked prefix, plus at
				// most the single in-flight mutation.
				candidates := [][]walOp{acked}
				if inflight != nil {
					withInflight := append(append([]walOp(nil), acked...), *inflight)
					candidates = append(candidates, withInflight)
				}
				matched := false
				for _, cand := range candidates {
					if reflect.DeepEqual(got, reference(walModel(base, cand))) {
						matched = true
						break
					}
				}
				if !matched {
					t.Fatalf("%s: recovered state (%d docs) matches neither the %d acked ops nor acked+inflight (inflight=%v)",
						label, got.numDocs, len(acked), inflight)
				}
			}
		})
	}
}
